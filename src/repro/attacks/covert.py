"""Covert-channel framework on the cache simulator.

A covert channel transmits a bit string from a *sender* (playing the victim
role: its accesses are the secret-dependent ones) to a *receiver* (the
attacker, who measures its own access latencies).  Channels implement one
symbol transfer; the framework handles message framing, error counting, and
the stealth statistics (sender misses) that the miss-count detector observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.cache.cache import Cache
from repro.cache.config import CacheConfig


@dataclass
class ChannelTransmissionResult:
    """Outcome of transmitting a message through a simulated covert channel."""

    sent_bits: List[int]
    received_bits: List[int]
    total_accesses: int
    measured_accesses: int
    sender_accesses: int
    sender_misses: int
    symbols: int

    @property
    def bit_errors(self) -> int:
        return sum(1 for sent, received in zip(self.sent_bits, self.received_bits)
                   if sent != received)

    @property
    def error_rate(self) -> float:
        if not self.sent_bits:
            return 0.0
        return self.bit_errors / len(self.sent_bits)

    @property
    def bits_per_access(self) -> float:
        if self.total_accesses == 0:
            return 0.0
        return len(self.sent_bits) / self.total_accesses

    @property
    def measured_fraction(self) -> float:
        if self.total_accesses == 0:
            return 0.0
        return self.measured_accesses / self.total_accesses

    @property
    def stealthy(self) -> bool:
        """True when the sender (victim) never missed — bypasses miss-count detection."""
        return self.sender_misses == 0


class SimulatedCovertChannel:
    """Base class: one cache set shared by a sender and a receiver."""

    name = "base"
    bits_per_symbol = 1

    def __init__(self, num_ways: int = 8, rep_policy: str = "lru", seed: int = 0):
        self.num_ways = num_ways
        self.rep_policy = rep_policy
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.cache = self._build_cache()
        self.total_accesses = 0
        self.measured_accesses = 0
        self.sender_accesses = 0
        self.sender_misses = 0

    def _build_cache(self) -> Cache:
        config = CacheConfig.fully_associative(num_ways=self.num_ways,
                                               rep_policy=self.rep_policy,
                                               rng_seed=self.seed)
        return Cache(config, rng=self.rng)

    # ------------------------------------------------------------- primitives
    def _receiver_access(self, address: int, measure: bool = False) -> bool:
        result = self.cache.access(address, domain="attacker")
        self.total_accesses += 1
        if measure:
            self.measured_accesses += 1
        return result.hit

    def _receiver_flush(self, address: int) -> None:
        self.cache.flush(address, domain="attacker")
        self.total_accesses += 1

    def _sender_access(self, address: int) -> bool:
        result = self.cache.access(address, domain="victim")
        self.total_accesses += 1
        self.sender_accesses += 1
        if not result.hit:
            self.sender_misses += 1
        return result.hit

    # -------------------------------------------------------------- interface
    def prepare(self) -> None:
        """Establish the channel's steady-state cache contents."""

    def send_and_receive_symbol(self, value: int) -> int:  # pragma: no cover - abstract
        """Transmit one symbol (``value`` in [0, 2**bits_per_symbol)); return the decode."""
        raise NotImplementedError

    # ------------------------------------------------------------ transmission
    def _reset_counters(self) -> None:
        self.total_accesses = 0
        self.measured_accesses = 0
        self.sender_accesses = 0
        self.sender_misses = 0

    def transmit(self, bits: List[int]) -> ChannelTransmissionResult:
        """Send a bit string; return the received bits and channel statistics."""
        self._reset_counters()
        self.cache.reset()
        self.prepare()
        bits = [int(bit) & 1 for bit in bits]
        # Pad to a whole number of symbols.
        padded = list(bits)
        while len(padded) % self.bits_per_symbol:
            padded.append(0)
        received: List[int] = []
        symbols = 0
        for start in range(0, len(padded), self.bits_per_symbol):
            chunk = padded[start:start + self.bits_per_symbol]
            value = 0
            for bit in chunk:
                value = (value << 1) | bit
            decoded = self.send_and_receive_symbol(value)
            symbols += 1
            for position in reversed(range(self.bits_per_symbol)):
                received.append((decoded >> position) & 1)
        return ChannelTransmissionResult(
            sent_bits=bits,
            received_bits=received[: len(bits)],
            total_accesses=self.total_accesses,
            measured_accesses=self.measured_accesses,
            sender_accesses=self.sender_accesses,
            sender_misses=self.sender_misses,
            symbols=symbols,
        )

    def random_message(self, length: int = 2048) -> List[int]:
        """A random bit string, as used in the paper's bit-rate measurements."""
        return [int(bit) for bit in self.rng.integers(0, 2, size=length)]
