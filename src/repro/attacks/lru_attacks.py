"""LRU-state attacks (Xiong & Szefer, HPCA 2020).

These attacks never evict the victim's line before the victim uses it, so the
victim never misses — they leak through the *replacement state* instead of the
tag state.  The paper uses the LRU address-based channel as the real-machine
baseline that StealthyStreamline is compared against (Table X, Figure 5).
"""

from __future__ import annotations

from typing import List

from repro.attacks.covert import SimulatedCovertChannel
from repro.attacks.sequences import AttackCategory, AttackSequence, access, guess, trigger
from repro.env.config import EnvConfig


class LRUAddressBasedChannel(SimulatedCovertChannel):
    """One-bit-per-symbol LRU address-based covert channel.

    Protocol for a W-way set sharing address 0 between sender and receiver:

    1. receiver accesses 0, then W-1 filler lines (0 becomes the LRU line);
    2. sender accesses 0 to transmit "1" (promoting it) or stays idle for "0";
    3. receiver accesses one new line, evicting the LRU line — which is 0
       exactly when the sender stayed idle;
    4. receiver reloads 0 and measures: a hit decodes "1", a miss "0".

    The sender's access (when it happens) always hits, so the channel is
    invisible to miss-count detection.
    """

    name = "lru_address_based"
    bits_per_symbol = 1

    def __init__(self, num_ways: int = 8, rep_policy: str = "lru", seed: int = 0):
        super().__init__(num_ways=num_ways, rep_policy=rep_policy, seed=seed)
        self.shared_address = 0
        self.filler_addresses = list(range(1, num_ways))
        self.evict_address = num_ways

    def prepare(self) -> None:
        self._receiver_access(self.shared_address)
        for address in self.filler_addresses:
            self._receiver_access(address)

    def send_and_receive_symbol(self, value: int) -> int:
        # Re-establish the age order: shared line oldest, fillers newer.
        self._receiver_access(self.shared_address)
        for address in self.filler_addresses:
            self._receiver_access(address)
        if value & 1:
            self._sender_access(self.shared_address)
        self._receiver_access(self.evict_address)
        hit = self._receiver_access(self.shared_address, measure=True)
        return 1 if hit else 0


def lru_address_based_sequence(config: EnvConfig, shared_address: int = 0) -> AttackSequence:
    """LRU address-based attack as a guessing-game action sequence (1-bit secret)."""
    fillers = [address for address in config.attacker_addresses if address != shared_address]
    if shared_address not in config.attacker_addresses:
        raise ValueError("the shared address must be attacker-accessible")
    evict_with = fillers[-1] if fillers else shared_address
    actions = [access(shared_address)]
    actions.extend(access(address) for address in fillers[:-1])
    actions.append(trigger())
    actions.append(access(evict_with))
    actions.append(access(shared_address))
    return AttackSequence(actions=actions, category=AttackCategory.LRU_STATE,
                          name="LRU address-based",
                          description="leak via replacement state without evicting the victim line")


def lru_set_based_sequence(config: EnvConfig) -> AttackSequence:
    """LRU set-based attack: detect whether the victim touched the monitored set.

    The receiver fills the set minus one way, lets the victim run, then brings
    in a new line and checks which of its own lines survived.
    """
    attacker = config.attacker_addresses
    if len(attacker) < 2:
        raise ValueError("LRU set-based attack needs at least two attacker addresses")
    prime = attacker[:-1]
    new_line = attacker[-1]
    actions = [access(address) for address in prime]
    actions.append(trigger())
    actions.append(access(new_line))
    actions.append(access(prime[0]))
    return AttackSequence(actions=actions, category=AttackCategory.LRU_STATE,
                          name="LRU set-based",
                          description="observe replacement-state perturbation of the whole set")
