"""Evaluating whether an attack prefix leaks the victim's secret.

An attack prefix (a sequence of non-guess actions) *works* when the attacker's
observed hit/miss pattern differs across secrets, so that appending the right
guess yields high accuracy.  ``distinguishing_accuracy`` quantifies this: it
executes the prefix once per (secret, trial), maps each distinct observation
signature to its most likely secret, and reports the resulting guess accuracy.
This is the criterion used by the search baselines (Sec. VI-A) and by the
Table I / Table IV verification of textbook sequences.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Sequence, Tuple


def _resolve_env(env):
    """Accept a ready env, a scenario id, or a ScenarioSpec."""
    if isinstance(env, str):
        from repro.scenarios import make

        return make(env)
    from repro.scenarios.spec import ScenarioSpec

    if isinstance(env, ScenarioSpec):
        return env.build()
    return env


def observation_signature(env, action_indices: Sequence[int],
                          secret) -> Tuple[Tuple[Optional[bool], ...], int]:
    """Run ``action_indices`` on ``env`` with a pinned secret; return (signature, steps).

    The signature is the tuple of per-step hit/miss observations (None when
    the step produced no latency observation).
    """
    env.reset(secret=secret)
    signature: List[Optional[bool]] = []
    steps = 0
    for action_index in action_indices:
        _observation, _reward, done, info = env.step(int(action_index))
        signature.append(info.get("hit"))
        steps += 1
        if done:
            break
    return tuple(signature), steps


def distinguishing_accuracy(signatures_by_secret: Dict) -> float:
    """Best achievable guess accuracy given observation signatures per secret.

    For each signature, the attacker guesses the secret most frequently
    associated with it; accuracy is the fraction of samples that guess gets
    right (uniform prior over secrets).
    """
    signature_counts: Dict[tuple, Counter] = defaultdict(Counter)
    total = 0
    for secret, signatures in signatures_by_secret.items():
        for signature in signatures:
            signature_counts[signature][secret] += 1
            total += 1
    if total == 0:
        return 0.0
    correct = sum(counter.most_common(1)[0][1] for counter in signature_counts.values())
    return correct / total


def evaluate_action_sequence(env, action_indices: Sequence[int],
                             trials: int = 4) -> Tuple[float, int]:
    """Accuracy achievable by the prefix ``action_indices`` on ``env``.

    ``env`` may be a ready environment, a registered scenario id, or a
    :class:`~repro.scenarios.ScenarioSpec`.  Executes the prefix ``trials``
    times per possible secret (multiple trials matter for noisy or randomized
    caches) and returns (accuracy, env_steps).
    """
    env = _resolve_env(env)
    secrets: List = list(env.config.victim_addresses)
    if env.config.victim_no_access_enable:
        secrets.append(None)
    signatures_by_secret: Dict = {secret: [] for secret in secrets}
    total_steps = 0
    for secret in secrets:
        for _ in range(trials):
            signature, steps = observation_signature(env, action_indices, secret)
            signatures_by_secret[secret].append(signature)
            total_steps += steps
    return distinguishing_accuracy(signatures_by_secret), total_steps
