"""Environment wrappers that add detection schemes to the guessing game.

Each wrapper keeps the underlying environment's interface (reset/step) and
augments the reward / termination according to one of the paper's detectors:

* :class:`MissCountDetectionWrapper` — terminate with ``detection_reward``
  when the victim's triggered access misses (µarch-statistics detection);
* :class:`AutocorrelationPenaltyWrapper` — add an L2 autocorrelation penalty
  at episode end (CC-Hunter bypass training, Sec. V-D);
* :class:`SVMDetectionWrapper` — add ``detection_reward`` when a Cyclone-style
  SVM classifies the episode's trace as an attack.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.detection.autocorrelation import AutocorrelationDetector
from repro.detection.cyclone import CycloneDetector
from repro.detection.misscount import MissCountDetector
from repro.env.guessing_game import CacheGuessingGameEnv, StepResult


class EnvWrapper:
    """Base wrapper delegating everything to the wrapped environment."""

    # Wrappers shape rewards in step(); the allocation-free step_into path
    # would bypass them, so it is explicitly disabled (VecEnv checks this
    # before falling through __getattr__ to the inner env's implementation).
    supports_step_into = False

    def __init__(self, env: CacheGuessingGameEnv):
        self.env = env

    def __getattr__(self, name):
        return getattr(self.env, name)

    def reset(self, **kwargs) -> np.ndarray:
        return self.env.reset(**kwargs)

    def step(self, action_index: int) -> StepResult:
        return self.env.step(action_index)


class MissCountDetectionWrapper(EnvWrapper):
    """Terminate the episode when the victim's access misses."""

    def __init__(self, env: CacheGuessingGameEnv, detector: Optional[MissCountDetector] = None):
        super().__init__(env)
        self.detector = detector or MissCountDetector()

    def reset(self, **kwargs) -> np.ndarray:
        self.detector.reset()
        return self.env.reset(**kwargs)

    def step(self, action_index: int) -> StepResult:
        result = self.env.step(action_index)
        victim_hit = result.info.get("victim_hit", "absent")
        if victim_hit != "absent" and self.detector.observe_victim_access(victim_hit):
            reward = result.reward + self.env.config.rewards.detection_reward
            result = StepResult(result.observation, reward, True,
                                {**result.info, "detected": True})
        return result


def conflict_train_from_env(env: CacheGuessingGameEnv) -> List[int]:
    """Extract the CC-Hunter conflict-event train from the env's cache backend."""
    events = env.backend.events
    if events is None:
        return []
    return events.conflict_train()


class AutocorrelationPenaltyWrapper(EnvWrapper):
    """Add an autocorrelation L2 penalty to the reward at episode end."""

    def __init__(self, env: CacheGuessingGameEnv,
                 detector: Optional[AutocorrelationDetector] = None,
                 penalty_scale: float = -1.0, terminate_on_detection: bool = False):
        super().__init__(env)
        self.detector = detector or AutocorrelationDetector()
        self.penalty_scale = penalty_scale
        self.terminate_on_detection = terminate_on_detection

    def step(self, action_index: int) -> StepResult:
        result = self.env.step(action_index)
        if not result.done:
            return result
        train = conflict_train_from_env(self.env)
        penalty = self.detector.penalty(train, scale=self.penalty_scale)
        max_autocorrelation = self.detector.max_autocorrelation(train)
        detected = self.detector.detect(train)
        reward = result.reward + penalty
        if detected and self.terminate_on_detection:
            reward += self.env.config.rewards.detection_reward
        info = {**result.info,
                "autocorrelation_penalty": penalty,
                "max_autocorrelation": max_autocorrelation,
                "detected": detected,
                "conflict_train": train}
        return StepResult(result.observation, reward, result.done, info)


def domain_trace_from_env(env: CacheGuessingGameEnv) -> List[Tuple[str, int]]:
    """(domain, address) trace of the current episode for the Cyclone detector."""
    trace = []
    for entry in env.trace:
        if entry.kind == "access" and entry.address is not None:
            trace.append((entry.actor, entry.address))
    return trace


class SVMDetectionWrapper(EnvWrapper):
    """Penalize episodes whose access trace the Cyclone SVM classifies as an attack."""

    def __init__(self, env: CacheGuessingGameEnv, detector: CycloneDetector,
                 penalize: bool = True):
        super().__init__(env)
        self.detector = detector
        self.penalize = penalize

    def step(self, action_index: int) -> StepResult:
        result = self.env.step(action_index)
        if not result.done:
            return result
        trace = domain_trace_from_env(self.env)
        detection_rate = self.detector.detection_rate(trace)
        detected = detection_rate > 0.0
        reward = result.reward
        if detected and self.penalize:
            reward += self.env.config.rewards.detection_reward * detection_rate
        info = {**result.info, "detected": detected,
                "svm_detection_rate": detection_rate}
        return StepResult(result.observation, reward, result.done, info)
