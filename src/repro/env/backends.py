"""Cache backends the guessing-game environment can run against.

The RL formulation only needs an interface that (1) performs an attacker or
victim memory access and reports hit/miss, (2) optionally flushes a line, and
(3) can be reset.  Three backends implement it:

* :class:`SimulatedCacheBackend` — the software cache simulator (optionally a
  PL cache);
* :class:`HierarchyBackend` — two cores with private L1s and a shared
  inclusive L2 (Table IV configs 16-17);
* blackbox hardware backends live in :mod:`repro.hardware` and are adapted by
  :class:`repro.env.hardware_env.BlackboxHardwareEnv`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.cache import Cache
from repro.cache.config import CacheConfig
from repro.cache.defended import make_cache
from repro.cache.events import EventLog
from repro.cache.hierarchy import TwoLevelCache
from repro.cache.plcache import PLCache
from repro.env.config import EnvConfig


class CacheBackend:
    """Interface between the environment and a cache implementation."""

    def reset(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def access(self, address: int, domain: str) -> tuple:
        """Access ``address`` for ``domain``; return (hit, latency)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def flush(self, address: int, domain: str) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def events(self) -> Optional[EventLog]:
        """Event log for detectors, when the backend exposes one."""
        return None

    def warm_up(self, addresses, domain: str = "attacker") -> None:
        for address in addresses:
            self.access(address, domain)


class SimulatedCacheBackend(CacheBackend):
    """Single-level software cache, optionally defended.

    The cache class follows the config: PL-locked victim lines build a
    :class:`~repro.cache.plcache.PLCache`, a compiled ``defense`` fragment in
    ``config.extra`` builds the matching :mod:`repro.cache.defended` cache,
    everything else a plain :class:`~repro.cache.cache.Cache`.
    """

    def __init__(self, config: CacheConfig, rng: Optional[np.random.Generator] = None,
                 pl_locked_addresses: Optional[list] = None):
        self.config = config
        self.rng = rng or np.random.default_rng(config.rng_seed)
        self.pl_locked_addresses = list(pl_locked_addresses or [])
        if self.pl_locked_addresses:
            self.cache: Cache = PLCache(config, rng=self.rng)
        else:
            self.cache = make_cache(config, rng=self.rng)
        self._install_locks()

    def _install_locks(self) -> None:
        if self.pl_locked_addresses:
            self.cache.preload_locked(self.pl_locked_addresses, domain="victim")

    def reset(self) -> None:
        self.cache.reset()
        self._install_locks()

    def access(self, address: int, domain: str) -> tuple:
        result = self.cache.access(address, domain=domain)
        return result.hit, result.latency

    def flush(self, address: int, domain: str) -> None:
        self.cache.flush(address, domain=domain)

    @property
    def events(self) -> EventLog:
        return self.cache.events


class SoACacheBackend(CacheBackend):
    """Single-level cache backed by the vectorized SoA engine (one env wide).

    Selected with ``backend="soa"`` in the env config / scenario overrides.
    Bit-compatible with :class:`SimulatedCacheBackend` for supported configs
    (see ``SOA_POLICIES``), but does not keep an :class:`EventLog`, so
    detection wrappers need the object backend.
    """

    def __init__(self, config: CacheConfig, rng: Optional[np.random.Generator] = None):
        from repro.cache.soa import SoACacheEngine, domain_code

        self.config = config
        self.rng = rng or np.random.default_rng(config.rng_seed)
        self.engine = SoACacheEngine(config, 1, rngs=[self.rng])
        self._domain_code = domain_code
        self._env0 = np.zeros(1, dtype=np.intp)
        self._addr = np.zeros(1, dtype=np.int64)
        self._dom = np.zeros(1, dtype=np.int8)

    def reset(self) -> None:
        self.engine.reset()

    def access(self, address: int, domain: str) -> tuple:
        self._addr[0] = address
        self._dom[0] = self._domain_code(domain)
        hit, _, _, _ = self.engine.access(self._env0, self._addr, self._dom,
                                          collect=False)
        if hit[0]:
            return True, self.config.hit_latency
        return False, self.config.miss_latency

    def flush(self, address: int, domain: str) -> None:
        self._addr[0] = address
        self.engine.flush(self._env0, self._addr)


class HierarchyBackend(CacheBackend):
    """Two-core hierarchy: attacker and victim each run on their own core."""

    def __init__(self, l1_config: CacheConfig, l2_config: CacheConfig,
                 attacker_core: int = 0, victim_core: int = 1,
                 rng: Optional[np.random.Generator] = None):
        self.hierarchy = TwoLevelCache(l1_config, l2_config, cores=2, rng=rng)
        self.attacker_core = attacker_core
        self.victim_core = victim_core

    def reset(self) -> None:
        self.hierarchy.reset()

    def _core_for(self, domain: str) -> int:
        return self.victim_core if domain == "victim" else self.attacker_core

    def access(self, address: int, domain: str) -> tuple:
        result = self.hierarchy.access(address, core=self._core_for(domain), domain=domain)
        return result.hit, result.latency

    def flush(self, address: int, domain: str) -> None:
        self.hierarchy.flush(address, domain=domain)

    @property
    def events(self) -> EventLog:
        return self.hierarchy.l2.events


def make_backend(config: EnvConfig, rng: Optional[np.random.Generator] = None,
                 pl_locked_addresses: Optional[list] = None) -> CacheBackend:
    """Build the backend described by an :class:`EnvConfig`.

    ``config.backend`` selects the implementation: ``"soa"`` forces the
    structure-of-arrays engine (no event log, no PL locks, no hierarchy);
    ``"object"`` and ``"auto"`` build the full-fidelity object simulator —
    single envs keep the event log for detectors, while the *batched* SoA
    fast path engages at the :class:`~repro.rl.vec_env.VecEnv` level.
    """
    rng = rng or np.random.default_rng(config.seed)
    if config.backend == "soa":
        if config.hierarchy or config.l2_cache is not None:
            raise ValueError("backend='soa' does not support cache hierarchies")
        if pl_locked_addresses:
            raise ValueError("backend='soa' does not support PL-cache locked "
                             "addresses; use the object backend")
        return SoACacheBackend(config.cache, rng=rng)
    if config.hierarchy:
        if config.l2_cache is None:
            raise ValueError("hierarchy backend requires l2_cache")
        return HierarchyBackend(config.cache, config.l2_cache,
                                attacker_core=config.attacker_core,
                                victim_core=config.victim_core, rng=rng)
    return SimulatedCacheBackend(config.cache, rng=rng,
                                 pl_locked_addresses=pl_locked_addresses)
