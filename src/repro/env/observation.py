"""Observation encoding: a sliding window of per-step features.

The state space (Sec. IV-C) is the Cartesian product over a window of W steps
of (latency, action taken, step index, victim-triggered).  The encoder keeps
the most recent W steps and produces either a flat feature vector (for MLP
policies) or a (W, features) matrix (for the attention encoder).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

import numpy as np


class LatencyObservation(enum.Enum):
    """What the attacker observed for one step: a hit, a miss, or nothing."""

    HIT = 0
    MISS = 1
    NA = 2


@dataclass
class StepRecord:
    """One step of history: latency category, action index, step, trigger flag."""

    latency: LatencyObservation
    action_index: int
    step: int
    victim_triggered: bool


class ObservationEncoder:
    """Fixed-size sliding-window encoder for the guessing-game state."""

    def __init__(self, window_size: int, num_actions: int, max_steps: int):
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        self.window_size = window_size
        self.num_actions = num_actions
        self.max_steps = max(max_steps, 1)
        # Per-step features: latency one-hot (3) + action one-hot (+1 "none")
        # + normalized step + victim-triggered flag.
        self.step_features = 3 + (num_actions + 1) + 1 + 1
        self.reset()

    def reset(self) -> None:
        self._history: List[StepRecord] = []

    def record(self, latency: LatencyObservation, action_index: int, step: int,
               victim_triggered: bool) -> None:
        """Append one step of history (oldest entries fall out of the window)."""
        self._history.append(StepRecord(latency, action_index, step, victim_triggered))
        if len(self._history) > self.window_size:
            del self._history[: len(self._history) - self.window_size]

    @property
    def history(self) -> List[StepRecord]:
        return list(self._history)

    @property
    def flat_size(self) -> int:
        return self.window_size * self.step_features

    def _encode_step(self, record: Optional[StepRecord]) -> np.ndarray:
        features = np.zeros(self.step_features, dtype=np.float64)
        if record is None:
            # Empty slot: latency NA, action "none".
            features[LatencyObservation.NA.value] = 1.0
            features[3 + self.num_actions] = 1.0
            return features
        features[record.latency.value] = 1.0
        features[3 + record.action_index] = 1.0
        features[3 + self.num_actions + 1] = min(record.step / self.max_steps, 1.0)
        features[3 + self.num_actions + 2] = 1.0 if record.victim_triggered else 0.0
        return features

    def encode_matrix(self) -> np.ndarray:
        """(window_size, step_features) matrix, most recent step last."""
        rows = []
        padding = self.window_size - len(self._history)
        for _ in range(padding):
            rows.append(self._encode_step(None))
        for record in self._history:
            rows.append(self._encode_step(record))
        return np.stack(rows, axis=0)

    def encode_flat(self) -> np.ndarray:
        """Flattened window feature vector for MLP policies."""
        return self.encode_matrix().reshape(-1)
