"""Observation encoding: a sliding window of per-step features.

The state space (Sec. IV-C) is the Cartesian product over a window of W steps
of (latency, action taken, step index, victim-triggered).  The encoder keeps
the most recent W steps and produces either a flat feature vector (for MLP
policies) or a (W, features) matrix (for the attention encoder).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

import numpy as np


class LatencyObservation(enum.Enum):
    """What the attacker observed for one step: a hit, a miss, or nothing."""

    HIT = 0
    MISS = 1
    NA = 2


@dataclass
class StepRecord:
    """One step of history: latency category, action index, step, trigger flag."""

    latency: LatencyObservation
    action_index: int
    step: int
    victim_triggered: bool


class ObservationEncoder:
    """Fixed-size sliding-window encoder for the guessing-game state."""

    def __init__(self, window_size: int, num_actions: int, max_steps: int):
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        self.window_size = window_size
        self.num_actions = num_actions
        self.max_steps = max(max_steps, 1)
        # Per-step features: latency one-hot (3) + action one-hot (+1 "none")
        # + normalized step + victim-triggered flag.
        self.step_features = 3 + (num_actions + 1) + 1 + 1
        self.reset()

    def reset(self) -> None:
        self._history: List[StepRecord] = []

    def record(self, latency: LatencyObservation, action_index: int, step: int,
               victim_triggered: bool) -> None:
        """Append one step of history (oldest entries fall out of the window)."""
        self._history.append(StepRecord(latency, action_index, step, victim_triggered))
        if len(self._history) > self.window_size:
            del self._history[: len(self._history) - self.window_size]

    @property
    def history(self) -> List[StepRecord]:
        return list(self._history)

    @property
    def flat_size(self) -> int:
        return self.window_size * self.step_features

    def encode_matrix(self) -> np.ndarray:
        """(window_size, step_features) matrix, most recent step last."""
        flat = self.encode_flat()
        return flat.reshape(self.window_size, self.step_features)

    def encode_flat(self) -> np.ndarray:
        """Flattened window feature vector for MLP policies."""
        out = np.empty(self.flat_size, dtype=np.float64)
        self.encode_into(out)
        return out

    def encode_into(self, out: np.ndarray) -> None:
        """Write the flat encoding into ``out`` (shape ``(flat_size,)``) in place.

        This is the allocation-free path used by the vectorized env: ``out``
        is typically one row of a preallocated batch observation buffer.
        """
        if out.shape != (self.flat_size,):
            raise ValueError(f"expected output of shape ({self.flat_size},), "
                             f"got {out.shape}")
        out[:] = 0.0
        features = self.step_features
        none_action = 3 + self.num_actions
        padding = self.window_size - len(self._history)
        base = 0
        for _ in range(padding):
            # Empty slot: latency NA, action "none".
            out[base + LatencyObservation.NA.value] = 1.0
            out[base + none_action] = 1.0
            base += features
        for record in self._history:
            out[base + record.latency.value] = 1.0
            out[base + 3 + record.action_index] = 1.0
            out[base + none_action + 1] = min(record.step / self.max_steps, 1.0)
            if record.victim_triggered:
                out[base + none_action + 2] = 1.0
            base += features
