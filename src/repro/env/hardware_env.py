"""Guessing-game environment running against a simulated real machine.

For the Table III experiments, the environment's cache implementation is a
blackbox machine (hidden replacement policy, measurement noise, no clflush),
exercised through the same attacker-controls-everything interface the paper
uses with CacheQuery.  The attacker's address range spans two ways' worth of
lines mapping to one set; the victim either accesses address 0 or makes no
access, matching the "0/E" victim configuration in Table III.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.config import CacheConfig
from repro.env.config import EnvConfig, RewardConfig
from repro.env.guessing_game import CacheGuessingGameEnv
from repro.hardware.blackbox import BlackboxCacheBackend
from repro.hardware.machines import MachineSpec, get_machine


class BlackboxHardwareEnv(CacheGuessingGameEnv):
    """The cache guessing game played against a simulated blackbox machine."""

    # Blackbox machines run behind a timing model, not the SoA engine.
    supports_soa_batching = False

    def __init__(self, machine: MachineSpec, attacker_addresses: Optional[int] = None,
                 rewards: Optional[RewardConfig] = None, window_size: Optional[int] = None,
                 seed: int = 0):
        self.machine = machine
        num_attacker_addresses = attacker_addresses or 2 * machine.num_ways
        # The cache config recorded here only describes the address layout the
        # agent sees; the actual behaviour comes from the blackbox backend.
        placeholder_cache = CacheConfig.fully_associative(
            num_ways=machine.num_ways, rep_policy="lru")
        reward_config = rewards or RewardConfig(step_reward=-0.005)
        config = EnvConfig(
            cache=placeholder_cache,
            attacker_addr_s=0,
            attacker_addr_e=num_attacker_addresses - 1,
            victim_addr_s=0,
            victim_addr_e=0,
            flush_enable=False,
            victim_no_access_enable=True,
            rewards=reward_config,
            window_size=window_size or max(16, 2 * machine.num_ways + 8),
            warmup_accesses=machine.num_ways,
            seed=seed,
        )
        rng = np.random.default_rng(seed)
        backend = BlackboxCacheBackend(machine, rng=rng)
        super().__init__(config, backend=backend, rng=rng)

    @classmethod
    def from_machine_key(cls, key: str, **kwargs) -> "BlackboxHardwareEnv":
        """Build the environment for a registered machine ("name:level")."""
        return cls(get_machine(key), **kwargs)
