"""The environment protocol every scenario-built env conforms to.

``repro.make()`` can return plain guessing-game envs, covert multi-guess
envs, blackbox-hardware envs, or any of them wrapped in detection wrappers.
All of them satisfy :class:`Env`: the classic gym calling convention plus the
two sizes the RL stack needs to build policies and rollout buffers.

Envs may additionally implement the *array-native* fast path used by
:class:`repro.rl.vec_env.VecEnv` — ``reset_into``/``step_into`` write the
observation directly into a caller-provided buffer instead of allocating a
fresh array per step.  Envs advertise it with ``supports_step_into = True``;
wrappers deliberately leave it ``False`` so their reward shaping is never
bypassed.
"""

from __future__ import annotations

from typing import Any, Dict, Protocol, Tuple, runtime_checkable

import numpy as np


@runtime_checkable
class Env(Protocol):
    """Gym-style environment protocol (duck-typed, structural)."""

    def reset(self, **kwargs) -> np.ndarray:
        """Start a new episode and return the initial observation."""

    def step(self, action_index: int) -> Tuple[np.ndarray, float, bool, Dict]:
        """Apply one action; return (observation, reward, done, info)."""

    @property
    def observation_size(self) -> int:
        """Flattened observation length (rollout-buffer row size)."""

    @property
    def action_space(self) -> Any:
        """Discrete action space exposing ``n``."""


@runtime_checkable
class BatchSteppable(Protocol):
    """Optional allocation-free stepping interface used by the vectorized path."""

    supports_step_into: bool

    def reset_into(self, out: np.ndarray, **kwargs) -> None:
        """Reset and write the initial observation into ``out``."""

    def step_into(self, action_index: int,
                  out: np.ndarray) -> Tuple[float, bool, Dict]:
        """Step and write the observation into ``out``; return (reward, done, info)."""
