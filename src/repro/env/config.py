"""Environment configuration (Table II: attack/victim program and RL configs)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cache.config import CacheConfig


@dataclass
class RewardConfig:
    """Reward values from Table II (defaults match Sec. IV-C)."""

    correct_guess_reward: float = 1.0
    wrong_guess_reward: float = -1.0
    step_reward: float = -0.01
    length_violation_reward: float = -2.0
    detection_reward: float = -2.0
    no_guess_reward: float = -1.0

    def __post_init__(self) -> None:
        if self.correct_guess_reward <= 0:
            raise ValueError("correct_guess_reward must be positive")
        if self.wrong_guess_reward > 0 or self.step_reward > 0:
            raise ValueError("wrong_guess_reward and step_reward must be non-positive")


@dataclass
class EnvConfig:
    """Full configuration of a cache guessing-game environment."""

    cache: CacheConfig = field(default_factory=CacheConfig)
    attacker_addr_s: int = 0
    attacker_addr_e: int = 3
    victim_addr_s: int = 0
    victim_addr_e: int = 0
    flush_enable: bool = False
    victim_no_access_enable: bool = True
    detection_enable: bool = False
    force_trigger_before_guess: bool = True
    window_size: Optional[int] = None
    max_steps: Optional[int] = None
    rewards: RewardConfig = field(default_factory=RewardConfig)
    warmup_accesses: Optional[int] = None
    hierarchy: bool = False
    l2_cache: Optional[CacheConfig] = None
    attacker_core: int = 0
    victim_core: int = 1
    seed: int = 0
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.backend not in ("auto", "object", "soa"):
            raise ValueError("backend must be 'auto', 'object', or 'soa'")
        if self.attacker_addr_e < self.attacker_addr_s:
            raise ValueError("attacker address range is empty")
        if self.victim_addr_e < self.victim_addr_s:
            raise ValueError("victim address range is empty")
        if self.hierarchy and self.l2_cache is None:
            raise ValueError("hierarchy=True requires an l2_cache config")

    # ------------------------------------------------------------- properties
    @property
    def attacker_addresses(self) -> List[int]:
        return list(range(self.attacker_addr_s, self.attacker_addr_e + 1))

    @property
    def victim_addresses(self) -> List[int]:
        return list(range(self.victim_addr_s, self.victim_addr_e + 1))

    @property
    def num_secrets(self) -> int:
        """Number of possible secrets (victim addresses plus optional no-access)."""
        return len(self.victim_addresses) + (1 if self.victim_no_access_enable else 0)

    @property
    def shared_addresses(self) -> List[int]:
        """Addresses accessible to both programs (enables flush+reload / evict+reload)."""
        attacker = set(self.attacker_addresses)
        return [address for address in self.victim_addresses if address in attacker]

    def effective_window_size(self) -> int:
        """Observation window size; defaults to 4x the cache block count, ≥ 8."""
        if self.window_size is not None:
            return self.window_size
        return max(8, 4 * self.cache.num_blocks)

    def effective_max_steps(self) -> int:
        """Episode length limit; defaults to the window size."""
        if self.max_steps is not None:
            return self.max_steps
        return self.effective_window_size()

    def effective_warmup(self) -> int:
        """Number of random warm-up accesses used to initialize the cache."""
        if self.warmup_accesses is not None:
            return self.warmup_accesses
        return self.cache.num_blocks
