"""Discrete action space of the cache guessing game.

The agent's actions (Sec. III-B / IV-C):

* ``ACCESS addr``  — attacker memory access, observes hit/miss latency;
* ``FLUSH addr``   — clflush of an attacker-reachable address (if enabled);
* ``TRIGGER``      — let the victim run its secret-dependent access;
* ``GUESS addr``   — guess the victim's secret address (ends the episode);
* ``GUESS_EMPTY``  — guess that the victim made no access (if enabled).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.env.config import EnvConfig


class ActionKind(enum.Enum):
    """Semantic category of an agent action."""

    ACCESS = "access"
    FLUSH = "flush"
    TRIGGER = "trigger"
    GUESS = "guess"
    GUESS_EMPTY = "guess_empty"


@dataclass(frozen=True)
class Action:
    """One concrete action: a kind plus (for access/flush/guess) an address."""

    kind: ActionKind
    address: Optional[int] = None

    def __str__(self) -> str:
        if self.kind is ActionKind.ACCESS:
            return str(self.address)
        if self.kind is ActionKind.FLUSH:
            return f"f{self.address}"
        if self.kind is ActionKind.TRIGGER:
            return "v"
        if self.kind is ActionKind.GUESS:
            return f"g{self.address}"
        return "gE"

    @property
    def is_guess(self) -> bool:
        return self.kind in (ActionKind.GUESS, ActionKind.GUESS_EMPTY)


class ActionSpace:
    """Enumeration of the discrete actions available under an :class:`EnvConfig`."""

    def __init__(self, config: EnvConfig):
        self.config = config
        self._actions: List[Action] = []
        for address in config.attacker_addresses:
            self._actions.append(Action(ActionKind.ACCESS, address))
        if config.flush_enable:
            for address in config.attacker_addresses:
                self._actions.append(Action(ActionKind.FLUSH, address))
        self._actions.append(Action(ActionKind.TRIGGER))
        for address in config.victim_addresses:
            self._actions.append(Action(ActionKind.GUESS, address))
        if config.victim_no_access_enable:
            self._actions.append(Action(ActionKind.GUESS_EMPTY))
        self._index: Dict[Action, int] = {action: i for i, action in enumerate(self._actions)}

    def __len__(self) -> int:
        return len(self._actions)

    def __iter__(self):
        return iter(self._actions)

    def decode(self, index: int) -> Action:
        """Map a discrete action index to its semantic :class:`Action`."""
        if not 0 <= index < len(self._actions):
            raise IndexError(f"action index {index} out of range (n={len(self._actions)})")
        return self._actions[index]

    def encode(self, action: Action) -> int:
        """Map a semantic :class:`Action` back to its index."""
        if action not in self._index:
            raise KeyError(f"action {action} not in this action space")
        return self._index[action]

    @property
    def actions(self) -> List[Action]:
        return list(self._actions)

    @property
    def guess_indices(self) -> List[int]:
        return [i for i, action in enumerate(self._actions) if action.is_guess]

    @property
    def trigger_index(self) -> int:
        return self.encode(Action(ActionKind.TRIGGER))

    def guess_index_for_secret(self, secret: Optional[int]) -> int:
        """Index of the guess action matching ``secret`` (None = no access)."""
        if secret is None:
            return self.encode(Action(ActionKind.GUESS_EMPTY))
        return self.encode(Action(ActionKind.GUESS, secret))
