"""Batched guessing-game environment over the SoA cache engine.

:class:`BatchedGuessingGame` advances **all** envs of a vectorized batch by
one step in a handful of numpy operations: action decoding is a table lookup,
cache accesses go through the vectorized :class:`~repro.cache.soa.SoACacheEngine`
kernels, rewards/termination are array expressions, and the observation window
is a rolling ``[num_envs, window, features]`` buffer written in place into the
caller's batch.

Parity contract: a batch of ``num_envs`` games seeded ``seeds[i]`` behaves
bit-identically to ``num_envs`` independent
:class:`~repro.env.guessing_game.CacheGuessingGameEnv` instances built with
the same config and ``seed=seeds[i]`` — same observations, rewards, dones,
and per-env RNG stream consumption (warm-up draws, secret draws, and
random-replacement victim picks happen in the same per-env order).
:class:`~repro.rl.vec_env.VecEnv` relies on this to transparently collapse N
identical SoA-capable scenario envs into one batched env.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cache.soa import (
    DOMAIN_ATTACKER,
    DOMAIN_VICTIM,
    SOA_MAPPINGS,
    SOA_POLICIES,
    SoACacheEngine,
)
from repro.env.actions import ActionKind, ActionSpace
from repro.env.config import EnvConfig

# Integer codes for the action-kind lookup table.
_KIND_ACCESS = 0
_KIND_FLUSH = 1
_KIND_TRIGGER = 2
_KIND_GUESS = 3
_KIND_GUESS_EMPTY = 4
_KIND_CODE = {
    ActionKind.ACCESS: _KIND_ACCESS,
    ActionKind.FLUSH: _KIND_FLUSH,
    ActionKind.TRIGGER: _KIND_TRIGGER,
    ActionKind.GUESS: _KIND_GUESS,
    ActionKind.GUESS_EMPTY: _KIND_GUESS_EMPTY,
}

# Observation feature layout (must match ObservationEncoder.encode_into).
_LAT_HIT = 0
_LAT_MISS = 1
_LAT_NA = 2


def config_supports_batching(config: EnvConfig) -> bool:
    """Whether one :class:`EnvConfig` can run on the SoA batched engine."""
    if config.backend == "object":
        return False
    if config.hierarchy or config.l2_cache is not None:
        return False
    cache = config.cache
    if cache.prefetcher:
        return False
    if cache.rep_policy.lower() not in SOA_POLICIES:
        return False
    if cache.rep_policy.lower() == "plru" and cache.num_ways & (cache.num_ways - 1):
        return False
    if cache.mapping.lower() not in SOA_MAPPINGS:
        return False
    fragment = (cache.extra or {}).get("defense")
    if fragment:
        from repro.defenses import fragment_supports_soa

        if not fragment_supports_soa(fragment, cache):
            return False
    return True


def spec_supports_batching(spec) -> bool:
    """Whether a :class:`~repro.scenarios.ScenarioSpec` can be collapsed into
    one :class:`BatchedGuessingGame`.

    Thin alias for the spec's own capability hook,
    :meth:`~repro.scenarios.ScenarioSpec.supports_soa`, which consults the
    env class, the wrapper builders, the defense, and the compiled cache
    config instead of a hard-coded allowlist.
    """
    return spec.supports_soa()


class BatchedGuessingGame:
    """All envs of one VecEnv batch as a single structure-of-arrays game."""

    def __init__(self, config: EnvConfig, num_envs: int,
                 seeds: Optional[Sequence[int]] = None):
        if not config_supports_batching(config):
            raise ValueError("this EnvConfig is not SoA-batchable; "
                             "use per-env CacheGuessingGameEnv instances")
        if seeds is None:
            seeds = range(num_envs)
        seeds = [int(seed) for seed in seeds]
        if len(seeds) != num_envs:
            raise ValueError("need one seed per env")
        self.config = config
        self.num_envs = num_envs
        # One stream per env, consumed in the same order as the per-env path
        # (which shares a single Generator between env and cache backend).
        self.rngs: List[np.random.Generator] = [np.random.default_rng(s) for s in seeds]
        # The game never reads per-access counters or per-line domain codes.
        self.engine = SoACacheEngine(config.cache, num_envs, rngs=self.rngs,
                                     track_stats=False, track_domains=False)
        # Domain-sensitive defenses (way partitioning) need to know whether
        # each access is the attacker's or the victim's.
        self._needs_domains = self.engine.domain_sensitive
        self._domain_buffer = np.zeros(num_envs, dtype=np.int8)

        self.actions = ActionSpace(config)
        self.num_actions = len(self.actions)
        self._kind_table = np.array([_KIND_CODE[a.kind] for a in self.actions],
                                    dtype=np.int64)
        self._addr_table = np.array(
            [-1 if a.address is None else a.address for a in self.actions],
            dtype=np.int64)
        # Per-action boolean tables: one gather per mask instead of a gather
        # plus compare.  GUESS and GUESS_EMPTY share one mask because the
        # address table encodes GUESS_EMPTY as -1, the same sentinel the
        # secrets array uses for "victim made no access" — so guess
        # correctness is a single ``addrs == secrets`` compare.
        self._access_table = self._kind_table == _KIND_ACCESS
        self._trigger_table = self._kind_table == _KIND_TRIGGER
        self._flush_table = self._kind_table == _KIND_FLUSH
        self._guess_table = ((self._kind_table == _KIND_GUESS)
                             | (self._kind_table == _KIND_GUESS_EMPTY))
        self._has_flush = bool(self._flush_table.any())

        self.window_size = config.effective_window_size()
        self.max_steps = config.effective_max_steps()
        # Normalized step feature per step count (the encoder clamps at 1).
        self._step_feature = np.minimum(
            np.arange(self.max_steps + 2) / max(self.max_steps, 1), 1.0)
        # ObservationEncoder layout: latency one-hot (3) + action one-hot
        # (+1 "none") + normalized step + victim-triggered flag.
        self.step_features = 3 + (self.num_actions + 1) + 1 + 1
        self.observation_size = self.window_size * self.step_features
        self._none_action = 3 + self.num_actions

        # -1 encodes the "victim makes no access" secret.
        choices: List[Optional[int]] = list(config.victim_addresses)
        if config.victim_no_access_enable:
            choices.append(None)
        self._secret_choices = choices
        self._warm_pool = config.attacker_addresses + config.victim_addresses
        self._warm_count = config.effective_warmup()

        E = num_envs
        self.secrets = np.full(E, -1, dtype=np.int64)
        self.step_counts = np.zeros(E, dtype=np.int64)
        self.victim_triggered = np.zeros(E, dtype=bool)
        self.episode_count = 0
        self._window = np.zeros((E, self.window_size, self.step_features))
        self._padding_row = np.zeros(self.step_features)
        self._padding_row[_LAT_NA] = 1.0
        self._padding_row[self._none_action] = 1.0
        self._row = np.zeros((E, self.step_features))
        self._latency = np.full(E, _LAT_NA, dtype=np.int64)
        self._arange = np.arange(E)
        self._rewards_cfg = config.rewards

    # ------------------------------------------------------------------ reset
    def _reset_envs(self, env_indices: np.ndarray) -> None:
        idx = np.asarray(env_indices, dtype=np.intp)
        if idx.shape[0] == 0:
            return
        self.engine.reset(idx)
        count = self._warm_count
        pool = self._warm_pool
        choices = self._secret_choices
        for env in idx:
            rng = self.rngs[env]
            if count > 0:
                # A size-``count`` integers() call consumes the stream exactly
                # like the per-env path's ``count`` scalar draws; the replay
                # itself runs on the engine's scalar (width-1) fast path
                # (fresh resets cannot hold locks, and the batched game never
                # locks lines, so the lock-free precondition always holds).
                draws = [pool[k] for k in rng.integers(len(pool), size=count)]
                self.engine.warm_up_from_empty(int(env), draws)
            secret = choices[int(rng.integers(len(choices)))]
            self.secrets[env] = -1 if secret is None else secret
        self.step_counts[idx] = 0
        self.victim_triggered[idx] = False
        self._window[idx] = self._padding_row
        self.episode_count += idx.shape[0]

    def reset_into(self, out: np.ndarray) -> None:
        """Start a new episode in every env; write the batch observation."""
        self._reset_envs(self._arange)
        out[:] = self._window.reshape(self.num_envs, -1)

    # ------------------------------------------------------------------- step
    def step_into(self, actions: np.ndarray, out_obs: np.ndarray,
                  out_rewards: np.ndarray, out_dones: np.ndarray) -> tuple:
        """Advance every env by one action; auto-reset finished episodes.

        Observations, rewards, and dones are written in place into the
        caller's (double-buffered) batch arrays.  Returns ``(correct,
        guessed)`` boolean arrays, meaningful where ``out_dones`` is set:
        whether the episode ended in a correct guess, and whether it ended by
        guessing at all (as opposed to a length violation).
        """
        acts = np.asarray(actions, dtype=np.int64)
        addrs = self._addr_table[acts]
        rewards_cfg = self._rewards_cfg
        self.step_counts += 1
        out_rewards[:] = rewards_cfg.step_reward
        latency = self._latency
        latency[:] = _LAT_NA

        # Attacker accesses and victim triggers share one vectorized access
        # call (a trigger with no secret performs no access).
        is_access = self._access_table[acts]
        is_trigger = self._trigger_table[acts]
        does_access = is_access | (is_trigger & (self.secrets >= 0))
        domains = None
        if self._needs_domains:
            domains = self._domain_buffer
            np.copyto(domains, np.where(is_access, DOMAIN_ATTACKER, DOMAIN_VICTIM))
        if does_access.all():
            # Common in attack traces: every env accesses, no subset gathers.
            addr = np.where(is_access, addrs, self.secrets)
            hit, _, _, _ = self.engine.access(self._arange, addr, domains,
                                              collect=False)
            latency[is_access] = np.where(hit[is_access], _LAT_HIT, _LAT_MISS)
        elif does_access.any():
            env_idx = np.flatnonzero(does_access)
            addr = np.where(is_access, addrs, self.secrets)[env_idx]
            hit, _, _, _ = self.engine.access(
                env_idx, addr, None if domains is None else domains[env_idx],
                collect=False)
            attacker_rows = is_access[env_idx]
            latency[env_idx[attacker_rows]] = np.where(hit[attacker_rows],
                                                       _LAT_HIT, _LAT_MISS)
        self.victim_triggered |= is_trigger

        if self._has_flush:
            is_flush = self._flush_table[acts]
            if is_flush.any():
                self.engine.flush(np.flatnonzero(is_flush), addrs[is_flush])

        # addrs is -1 for GUESS_EMPTY and secrets is -1 for "no access", so
        # one compare covers both guess kinds.
        guessed = self._guess_table[acts]
        correct = guessed & (addrs == self.secrets)
        if self.config.force_trigger_before_guess:
            correct &= self.victim_triggered
        done = guessed.copy()
        out_rewards[guessed] = np.where(correct[guessed],
                                        rewards_cfg.correct_guess_reward,
                                        rewards_cfg.wrong_guess_reward)
        length_violation = ~done & (self.step_counts >= self.max_steps)
        out_rewards[length_violation] += rewards_cfg.length_violation_reward
        done |= length_violation

        # Record this step into every env's sliding window; envs that just
        # finished are reset right after, wiping their rows (the per-env path
        # likewise overwrites the final observation with the reset one).
        window = self._window
        window[:, :-1] = window[:, 1:]
        row = self._row
        row[:] = 0.0
        row[self._arange, latency] = 1.0
        row[self._arange, 3 + acts] = 1.0
        row[:, self._none_action + 1] = self._step_feature[self.step_counts]
        row[:, self._none_action + 2] = self.victim_triggered
        window[:, -1] = row

        if done.any():
            self._reset_envs(np.flatnonzero(done))
        out_obs[:] = window.reshape(self.num_envs, -1)
        out_dones[:] = done
        return correct, guessed
