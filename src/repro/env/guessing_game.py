"""The cache guessing-game environment (AutoCAT's core RL formulation)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.env.actions import Action, ActionKind, ActionSpace
from repro.env.backends import CacheBackend, make_backend
from repro.env.config import EnvConfig
from repro.env.observation import LatencyObservation, ObservationEncoder
from repro.env.spaces import Box, Discrete


@dataclass
class StepResult:
    """Tuple-compatible step result (observation, reward, done, info)."""

    observation: np.ndarray
    reward: float
    done: bool
    info: Dict

    def __iter__(self):
        return iter((self.observation, self.reward, self.done, self.info))


@dataclass
class TraceEntry:
    """One event in the episode trace, used by detectors and the classifier."""

    step: int
    actor: str
    kind: str
    address: Optional[int]
    hit: Optional[bool]
    latency: Optional[int] = None
    correct: Optional[bool] = None

    def short(self) -> str:
        if self.actor == "victim":
            return "v"
        if self.kind == "access":
            return str(self.address)
        if self.kind == "flush":
            return f"f{self.address}"
        if self.kind == "guess":
            return "g"
        return self.kind


class CacheGuessingGameEnv:
    """Single-secret guessing game: the episode ends when the agent guesses.

    Follows the OpenAI Gym calling convention: ``reset()`` returns an
    observation, ``step(action)`` returns ``(observation, reward, done, info)``.
    The allocation-free ``reset_into``/``step_into`` variants back the
    vectorized batch step path.
    """

    # Advertise the allocation-free step path (wrappers set this to False so
    # their reward shaping cannot be bypassed).
    supports_step_into = True
    # Capability hook consulted by ScenarioSpec.supports_soa(): the plain
    # guessing game has a batched SoA twin (BatchedGuessingGame); subclasses
    # with different episode semantics must opt out.
    supports_soa_batching = True

    def __init__(self, config: EnvConfig, backend: Optional[CacheBackend] = None,
                 rng: Optional[np.random.Generator] = None,
                 pl_locked_addresses: Optional[List[int]] = None):
        self.config = config
        self.rng = rng or np.random.default_rng(config.seed)
        self.actions = ActionSpace(config)
        self.action_space = Discrete(len(self.actions))
        self.window_size = config.effective_window_size()
        self.max_steps = config.effective_max_steps()
        self.encoder = ObservationEncoder(self.window_size, len(self.actions), self.max_steps)
        self.observation_space = Box(0.0, 1.0, (self.encoder.flat_size,))
        self.backend = backend if backend is not None else make_backend(
            config, rng=self.rng, pl_locked_addresses=pl_locked_addresses)
        self.secret: Optional[int] = None
        self.step_count = 0
        self.victim_triggered = False
        self.trace: List[TraceEntry] = []
        self.episode_count = 0

    # ------------------------------------------------------------------ reset
    def _draw_secret(self) -> Optional[int]:
        secrets: List[Optional[int]] = list(self.config.victim_addresses)
        if self.config.victim_no_access_enable:
            secrets.append(None)
        return secrets[int(self.rng.integers(len(secrets)))]

    def _warm_up(self) -> None:
        count = self.config.effective_warmup()
        if count <= 0:
            return
        pool = self.config.attacker_addresses + self.config.victim_addresses
        addresses = [pool[int(self.rng.integers(len(pool)))] for _ in range(count)]
        self.backend.warm_up(addresses, domain="attacker")

    def _reset_core(self, secret: Optional[int] = "random") -> None:
        """Reset episode state without encoding an observation."""
        self.backend.reset()
        self._warm_up()
        self.encoder.reset()
        self.secret = self._draw_secret() if secret == "random" else secret
        self.step_count = 0
        self.victim_triggered = False
        self.trace = []
        self.episode_count += 1

    def reset(self, secret: Optional[int] = "random") -> np.ndarray:
        """Start a new episode.  ``secret`` can pin the victim secret for replay."""
        self._reset_core(secret=secret)
        return self.encoder.encode_flat()

    def reset_into(self, out: np.ndarray, secret: Optional[int] = "random") -> None:
        """Allocation-free reset: write the initial observation into ``out``."""
        self._reset_core(secret=secret)
        self.encoder.encode_into(out)

    # ------------------------------------------------------------------- step
    def _victim_access(self) -> Optional[bool]:
        """Run the victim's secret-dependent access; return its hit/miss (or None)."""
        if self.secret is None:
            return None
        hit, _latency = self.backend.access(self.secret, "victim")
        return hit

    def _guess_is_correct(self, action: Action) -> bool:
        if self.config.force_trigger_before_guess and not self.victim_triggered:
            # A guess made before the victim ever ran cannot be an informed
            # attack; treating it as wrong removes the degenerate
            # guess-immediately strategy (as in the original AutoCAT env).
            return False
        if action.kind is ActionKind.GUESS_EMPTY:
            return self.secret is None
        return self.secret is not None and action.address == self.secret

    def step(self, action_index: int) -> StepResult:
        """Apply one agent action and return (observation, reward, done, info)."""
        reward, done, info = self._step_core(int(action_index))
        return StepResult(self.encoder.encode_flat(), reward, done, info)

    def step_into(self, action_index: int, out: np.ndarray) -> tuple:
        """Allocation-free step: write the observation into ``out``.

        Returns ``(reward, done, info)``.  This is the env-side half of the
        vectorized batch step path; :class:`repro.rl.vec_env.VecEnv` hands in
        one row of its preallocated observation buffer.
        """
        reward, done, info = self._step_core(int(action_index))
        self.encoder.encode_into(out)
        return reward, done, info

    def _step_core(self, action_index: int) -> tuple:
        """Advance the game by one action; returns (reward, done, info)."""
        action = self.actions.decode(int(action_index))
        rewards = self.config.rewards
        self.step_count += 1
        reward = rewards.step_reward
        done = False
        info: Dict = {"action": action, "secret": self.secret, "step": self.step_count}
        latency_obs = LatencyObservation.NA

        if action.kind is ActionKind.ACCESS:
            hit, latency = self.backend.access(action.address, "attacker")
            latency_obs = LatencyObservation.HIT if hit else LatencyObservation.MISS
            info["hit"] = hit
            self.trace.append(TraceEntry(self.step_count, "attacker", "access",
                                         action.address, hit, latency))
        elif action.kind is ActionKind.FLUSH:
            self.backend.flush(action.address, "attacker")
            info["hit"] = None
            self.trace.append(TraceEntry(self.step_count, "attacker", "flush",
                                         action.address, None))
        elif action.kind is ActionKind.TRIGGER:
            victim_hit = self._victim_access()
            self.victim_triggered = True
            info["victim_hit"] = victim_hit
            self.trace.append(TraceEntry(self.step_count, "victim", "access",
                                         self.secret, victim_hit))
        else:  # guess
            correct = self._guess_is_correct(action)
            reward = rewards.correct_guess_reward if correct else rewards.wrong_guess_reward
            done = True
            info["correct"] = correct
            info["guess"] = action.address if action.kind is ActionKind.GUESS else None
            self.trace.append(TraceEntry(self.step_count, "attacker", "guess",
                                         action.address, None, correct=correct))

        if not done and self.step_count >= self.max_steps:
            reward += rewards.length_violation_reward
            done = True
            info["length_violation"] = True

        self.encoder.record(latency_obs, int(action_index), self.step_count,
                            self.victim_triggered)
        info["trace"] = self.trace
        return reward, done, info

    # ------------------------------------------------------------------ misc
    def action_labels(self) -> List[str]:
        """Human-readable label per action index (for printing attack sequences)."""
        return [str(action) for action in self.actions]

    def render_trace(self) -> str:
        """Render the episode trace in the paper's arrow notation."""
        return " -> ".join(entry.short() for entry in self.trace)

    @property
    def observation_size(self) -> int:
        return self.encoder.flat_size
