"""Gym-style RL environments for the cache guessing game.

The environment implements the paper's formulation (Sec. III-B): the agent
controls an attacker that accesses/flushes cache lines, triggers a victim
whose access depends on a hidden secret address, and finally guesses the
secret.  Observations are a sliding window of (latency, action, step,
victim-triggered) tuples; rewards follow Table II.
"""

from repro.env.config import EnvConfig, RewardConfig
from repro.env.actions import Action, ActionKind, ActionSpace
from repro.env.observation import ObservationEncoder, LatencyObservation
from repro.env.spaces import Discrete, Box
from repro.env.backends import (
    CacheBackend,
    SimulatedCacheBackend,
    SoACacheBackend,
    HierarchyBackend,
    make_backend,
)
from repro.env.protocol import Env, BatchSteppable
from repro.env.guessing_game import CacheGuessingGameEnv, StepResult
from repro.env.batched_env import BatchedGuessingGame, spec_supports_batching
from repro.env.covert_env import MultiGuessCovertEnv
from repro.env.wrappers import (
    EnvWrapper,
    MissCountDetectionWrapper,
    AutocorrelationPenaltyWrapper,
    SVMDetectionWrapper,
)
from repro.env.hardware_env import BlackboxHardwareEnv

__all__ = [
    "EnvConfig",
    "RewardConfig",
    "Action",
    "ActionKind",
    "ActionSpace",
    "ObservationEncoder",
    "LatencyObservation",
    "Discrete",
    "Box",
    "CacheBackend",
    "SimulatedCacheBackend",
    "SoACacheBackend",
    "HierarchyBackend",
    "make_backend",
    "Env",
    "BatchSteppable",
    "CacheGuessingGameEnv",
    "StepResult",
    "BatchedGuessingGame",
    "spec_supports_batching",
    "MultiGuessCovertEnv",
    "EnvWrapper",
    "MissCountDetectionWrapper",
    "AutocorrelationPenaltyWrapper",
    "SVMDetectionWrapper",
    "BlackboxHardwareEnv",
]
