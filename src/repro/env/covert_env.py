"""Multi-guess (covert-channel) episodes.

For the CC-Hunter and Cyclone case studies (Sec. V-D), the paper trains a
baseline agent where "multiple guesses happen in one fixed-step (e.g. 160
step) episode and each guess corresponds to one secret".  After each guess the
environment draws a fresh secret and the episode continues until the step
limit; there is a negative reward at the end if the agent never guessed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.env.actions import ActionKind
from repro.env.config import EnvConfig
from repro.env.guessing_game import CacheGuessingGameEnv, TraceEntry
from repro.env.observation import LatencyObservation


class MultiGuessCovertEnv(CacheGuessingGameEnv):
    """Fixed-length episodes in which every guess transmits one secret."""

    # Multi-guess episode semantics have no batched SoA twin.
    supports_soa_batching = False

    def __init__(self, config: EnvConfig, episode_length: int = 160, **kwargs):
        config.max_steps = episode_length
        super().__init__(config, **kwargs)
        self.episode_length = episode_length
        self.guesses_made = 0
        self.correct_guesses = 0

    def _reset_core(self, secret: Optional[int] = "random") -> None:
        super()._reset_core(secret=secret)
        self.guesses_made = 0
        self.correct_guesses = 0

    def _step_core(self, action_index: int) -> tuple:
        action = self.actions.decode(int(action_index))
        rewards = self.config.rewards
        self.step_count += 1
        reward = rewards.step_reward
        done = False
        info: Dict = {"action": action, "secret": self.secret, "step": self.step_count}
        latency_obs = LatencyObservation.NA

        if action.kind is ActionKind.ACCESS:
            hit, latency = self.backend.access(action.address, "attacker")
            latency_obs = LatencyObservation.HIT if hit else LatencyObservation.MISS
            info["hit"] = hit
            self.trace.append(TraceEntry(self.step_count, "attacker", "access",
                                         action.address, hit, latency))
        elif action.kind is ActionKind.FLUSH:
            self.backend.flush(action.address, "attacker")
            self.trace.append(TraceEntry(self.step_count, "attacker", "flush",
                                         action.address, None))
        elif action.kind is ActionKind.TRIGGER:
            victim_hit = self._victim_access()
            self.victim_triggered = True
            info["victim_hit"] = victim_hit
            self.trace.append(TraceEntry(self.step_count, "victim", "access",
                                         self.secret, victim_hit))
        else:  # guess: score it, then draw a new secret and keep going
            correct = self._guess_is_correct(action)
            reward = rewards.correct_guess_reward if correct else rewards.wrong_guess_reward
            self.guesses_made += 1
            self.correct_guesses += int(correct)
            info["correct"] = correct
            self.trace.append(TraceEntry(self.step_count, "attacker", "guess",
                                         action.address, None, correct=correct))
            self.secret = self._draw_secret()
            self.victim_triggered = False

        if self.step_count >= self.episode_length:
            done = True
            if self.guesses_made == 0:
                reward += rewards.no_guess_reward
            info["guesses_made"] = self.guesses_made
            info["correct_guesses"] = self.correct_guesses
            info["bit_rate"] = self.guesses_made / self.episode_length
            info["guess_accuracy"] = (self.correct_guesses / self.guesses_made
                                      if self.guesses_made else 0.0)

        self.encoder.record(latency_obs, int(action_index), self.step_count,
                            self.victim_triggered)
        info["trace"] = self.trace
        return reward, done, info

    # ------------------------------------------------------------ statistics
    def episode_statistics(self) -> Dict[str, float]:
        """Bit rate (guesses per step) and accuracy of the finished episode."""
        return {
            "guesses_made": self.guesses_made,
            "correct_guesses": self.correct_guesses,
            "bit_rate": self.guesses_made / max(self.step_count, 1),
            "guess_accuracy": (self.correct_guesses / self.guesses_made
                               if self.guesses_made else 0.0),
        }
