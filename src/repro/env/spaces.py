"""Minimal observation/action space descriptions (OpenAI-Gym-compatible shape)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.determinism import fallback_rng


class Discrete:
    """A discrete space with ``n`` actions: {0, 1, ..., n-1}."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("Discrete space requires n >= 1")
        self.n = n

    def contains(self, value: int) -> bool:
        return isinstance(value, (int, np.integer)) and 0 <= int(value) < self.n

    def sample(self, rng: Optional[np.random.Generator] = None) -> int:
        rng = rng if rng is not None else fallback_rng()
        return int(rng.integers(self.n))

    def __repr__(self) -> str:
        return f"Discrete({self.n})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Discrete) and other.n == self.n


class Box:
    """A continuous box space (used for the flattened observation vector)."""

    def __init__(self, low: float, high: float, shape: tuple):
        self.low = float(low)
        self.high = float(high)
        self.shape = tuple(shape)

    def contains(self, value: np.ndarray) -> bool:
        value = np.asarray(value)
        return (value.shape == self.shape
                and bool(np.all(value >= self.low - 1e-9))
                and bool(np.all(value <= self.high + 1e-9)))

    def sample(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = rng if rng is not None else fallback_rng()
        return rng.uniform(self.low, self.high, size=self.shape)

    def __repr__(self) -> str:
        return f"Box(low={self.low}, high={self.high}, shape={self.shape})"
