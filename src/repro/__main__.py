"""Entry point for ``python -m repro`` (see :mod:`repro.runs.cli`)."""

from repro.runs.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
