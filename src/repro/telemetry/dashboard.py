"""``repro top`` — a live terminal dashboard over the campaign service.

Renders three panes from the observability endpoints added in schema v3:

* **campaigns** — per-run progress bars from the catalogue's derived
  counters (``GET /api/campaigns`` or ``Catalog.list_runs``),
* **workers** — the live roster synthesized from lease heartbeats and
  telemetry flushes (``GET /api/workers`` / ``Catalog.worker_roster``):
  host, pid, the cell currently leased, last-seen age, throughput,
* **telemetry** — the busiest counters by summed delta
  (``GET /api/telemetry`` / ``Catalog.telemetry_totals``).

Two sources mirror the two transports: :class:`ServerSource` speaks HTTP
through :class:`~repro.store.client.StoreClient` (so it inherits retry,
backoff, and chaos discipline) and keeps working across server restarts;
:class:`LocalSource` reads ``catalog.sqlite`` directly for ``repro top``
pointed at a runs tree.  Rendering is plain ANSI — no curses dependency —
so ``--once`` output is equally usable in CI logs and pipes.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, List, Optional

CLEAR_SCREEN = "\x1b[2J\x1b[H"
BAR_WIDTH = 24
TICKER_ROWS = 10


class ServerSource:
    """Snapshot provider backed by a running ``repro serve`` instance."""

    def __init__(self, client) -> None:
        self.client = client

    def describe(self) -> str:
        return self.client.base_url

    def snapshot(self) -> Dict[str, Any]:
        from repro.store.client import StoreClientError

        snap: Dict[str, Any] = {"source": self.describe(), "health": None,
                                "campaigns": [], "workers": [], "totals": [],
                                "error": None}
        try:
            snap["health"] = self.client.health()
            snap["campaigns"] = self.client.get(
                "/api/campaigns").get("campaigns", [])
            snap["workers"] = self.client.get(
                "/api/workers").get("workers", [])
            snap["totals"] = self.client.get(
                "/api/telemetry?limit=1").get("totals", [])
        except StoreClientError as error:
            # A restarting or drained server renders as an error banner; the
            # next refresh reconnects through the client's own retry loop.
            snap["error"] = str(error)
        return snap


class LocalSource:
    """Snapshot provider reading ``catalog.sqlite`` directly (no server)."""

    def __init__(self, catalog_file: Path) -> None:
        self.catalog_file = Path(catalog_file)

    def describe(self) -> str:
        return str(self.catalog_file)

    def snapshot(self) -> Dict[str, Any]:
        from repro.store.catalog import Catalog
        from repro.store.queue import JobQueue

        snap: Dict[str, Any] = {"source": self.describe(), "health": None,
                                "campaigns": [], "workers": [], "totals": [],
                                "error": None}
        if not self.catalog_file.exists():
            snap["error"] = f"no catalogue at {self.catalog_file}"
            return snap
        try:
            with Catalog(self.catalog_file) as catalog:
                counts = JobQueue(catalog).counts()
                snap["health"] = {"ok": True, "queue": counts,
                                  "catalog": str(self.catalog_file)}
                snap["campaigns"] = catalog.list_runs()
                snap["workers"] = catalog.worker_roster()
                snap["totals"] = catalog.telemetry_totals()
        except Exception as error:  # pragma: no cover - locked/corrupt file
            snap["error"] = f"{type(error).__name__}: {error}"
        return snap


def _progress_bar(completed: int, total: int, width: int = BAR_WIDTH) -> str:
    total = max(total, 1)
    filled = int(round(width * min(completed, total) / total))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _age(seconds: Optional[float]) -> str:
    if seconds is None:
        return "never"
    seconds = max(0.0, float(seconds))
    if seconds < 100:
        return f"{seconds:.0f}s"
    if seconds < 6000:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def _render_campaigns(campaigns: List[Dict[str, Any]]) -> List[str]:
    lines = ["campaigns"]
    if not campaigns:
        return lines + ["  (none recorded)"]
    for record in campaigns:
        total = int(record.get("cells") or 0)
        completed = int(record.get("completed") or 0)
        failed = int(record.get("failed") or 0)
        bar = _progress_bar(completed, total)
        failures = f"  failed={failed}" if failed else ""
        lines.append(f"  {record['run_id']:<28} {bar} "
                     f"{completed:>3}/{total:<3} {record.get('status', '?')}"
                     f"{failures}")
    return lines


def _render_workers(workers: List[Dict[str, Any]]) -> List[str]:
    lines = ["workers"]
    if not workers:
        return lines + ["  (no workers seen yet)"]
    header = (f"  {'worker':<24} {'host':<12} {'pid':>6} {'state':<7} "
              f"{'last-seen':>9} {'cells/min':>9} {'done':>5}  current")
    lines.append(header)
    for worker in workers:
        current = worker.get("current") or {}
        cell = (f"{current.get('run_id', '')}#{current.get('cell_index')}"
                if current else "-")
        state = "alive" if worker.get("alive") else "stale"
        host = str(worker.get("host") or "?")
        pid = worker.get("pid")
        lines.append(
            f"  {str(worker.get('worker', '?')):<24} {host:<12} "
            f"{pid if pid is not None else '?':>6} {state:<7} "
            f"{_age(worker.get('age_seconds')):>9} "
            f"{worker.get('cells_per_minute', 0.0):>9} "
            f"{worker.get('completed', 0):>5}  {cell}")
    return lines


def _render_ticker(totals: List[Dict[str, Any]]) -> List[str]:
    lines = ["telemetry (summed counter deltas)"]
    if not totals:
        return lines + ["  (no points flushed yet)"]
    ranked = sorted(totals, key=lambda t: -float(t.get("total") or 0.0))
    for entry in ranked[:TICKER_ROWS]:
        lines.append(f"  {entry['name']:<44} {float(entry['total']):>12.3f} "
                     f"({entry.get('flushes', 0)} flushes)")
    return lines


def render(snapshot: Dict[str, Any]) -> str:
    """One full dashboard frame as plain text (no trailing newline)."""
    lines: List[str] = []
    health = snapshot.get("health") or {}
    queue = health.get("queue") or {}
    banner = f"repro top — {snapshot.get('source', '?')}"
    if health:
        extras = [f"queue pending={queue.get('pending', 0)}"
                  f" leased={queue.get('leased', 0)}"]
        if "schema_version" in health:
            extras.append(f"schema=v{health['schema_version']}")
        if "uptime_seconds" in health:
            extras.append(f"up {_age(health['uptime_seconds'])}")
        if health.get("draining"):
            extras.append("DRAINING")
        banner += "  (" + ", ".join(extras) + ")"
    lines.append(banner)
    if snapshot.get("error"):
        lines.append(f"  ! {snapshot['error']}")
    lines.append("")
    lines.extend(_render_campaigns(snapshot.get("campaigns", [])))
    lines.append("")
    lines.extend(_render_workers(snapshot.get("workers", [])))
    lines.append("")
    lines.extend(_render_ticker(snapshot.get("totals", [])))
    return "\n".join(lines)


def run_dashboard(source, interval: float = 2.0, once: bool = False,
                  frames: Optional[int] = None, stream=None) -> int:
    """Refresh loop.  ``once`` prints a single frame (CI / pipes); live mode
    clears the screen between frames and exits cleanly on Ctrl-C."""
    import sys

    out = stream if stream is not None else sys.stdout
    shown = 0
    try:
        while True:
            frame = render(source.snapshot())
            if once or frames is not None:
                out.write(frame + "\n")
            else:
                out.write(CLEAR_SCREEN + frame + "\n")
            out.flush()
            shown += 1
            if once or (frames is not None and shown >= frames):
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
