"""Hot-path-safe metrics and span tracing for the repro campaign stack.

Usage::

    from repro import telemetry

    CLAIMS = telemetry.counter("worker.claim.total")
    CLAIM_SECONDS = telemetry.histogram("worker.claim.seconds")

    with telemetry.span("runner.cell", run_id=run_id, cell=index):
        ...

Guarantees:

* **Strict no-op mode.**  With ``REPRO_TELEMETRY=0`` (or
  ``configure(enabled=False)``) every helper returns a shared null object
  whose methods do nothing — no registry state, no threads, no flushes —
  so telemetry-on campaign rows are bit-identical to telemetry-off.
  The enabled flag is sampled when a handle is created; instrumented
  classes therefore create handles at construction time, not import time.
* **Alloc-free record paths** (see ``registry.py``) and **monotonic
  clocks only** (``time.perf_counter``); wall-clock timestamps are
  stamped by the catalogue's SQL clock at persist time.
* **Best-effort persistence** via ``flush.TelemetryFlusher`` into the
  schema-v3 ``telemetry_points`` / ``telemetry_spans`` tables, either
  directly (``CatalogSink``) or over HTTP (``ClientSink`` →
  ``POST /api/telemetry``).

Metric names follow ``layer.component.metric`` (see CONTRIBUTING).
"""

from __future__ import annotations

import os
import threading
from typing import Optional, Sequence, Union

from repro.telemetry.flush import (
    CatalogSink,
    ClientSink,
    DEFAULT_FLUSH_INTERVAL_SECONDS,
    TelemetryFlusher,
    default_instance,
    flush_to_catalog,
)
from repro.telemetry.registry import (
    DEFAULT_BUCKET_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NULL_METRIC,
    NULL_SPAN,
    NullMetric,
    NullSpan,
    Span,
)

ENV_FLAG = "REPRO_TELEMETRY"

_state_lock = threading.Lock()
_override: Optional[bool] = None
_registry = MetricRegistry()


def enabled() -> bool:
    """True unless ``REPRO_TELEMETRY=0`` or ``configure(enabled=False)``."""
    if _override is not None:
        return _override
    return os.environ.get(ENV_FLAG, "1") != "0"


def configure(enabled: Optional[bool] = None, reset: bool = False) -> None:
    """Override the env flag in-process (``None`` defers back to the env).

    ``reset=True`` swaps in a fresh registry; handles created before the
    call keep pointing at the old one, so callers (tests, benchmarks)
    should re-create instrumented objects after reconfiguring.
    """
    global _override, _registry
    with _state_lock:
        _override = enabled
        if reset:
            _registry = MetricRegistry()


def get_registry() -> MetricRegistry:
    """The live process registry (always real, even when disabled)."""
    return _registry


def counter(name: str) -> Union[Counter, NullMetric]:
    return _registry.counter(name) if enabled() else NULL_METRIC


def gauge(name: str) -> Union[Gauge, NullMetric]:
    return _registry.gauge(name) if enabled() else NULL_METRIC


def histogram(
    name: str, edges: Optional[Sequence[float]] = None
) -> Union[Histogram, NullMetric]:
    return _registry.histogram(name, edges) if enabled() else NULL_METRIC


def span(name: str, **labels: object) -> Union[Span, NullSpan]:
    return _registry.span(name, **labels) if enabled() else NULL_SPAN


__all__ = [
    "ENV_FLAG",
    "DEFAULT_BUCKET_EDGES",
    "DEFAULT_FLUSH_INTERVAL_SECONDS",
    "CatalogSink",
    "ClientSink",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_METRIC",
    "NULL_SPAN",
    "NullMetric",
    "NullSpan",
    "Span",
    "TelemetryFlusher",
    "configure",
    "counter",
    "default_instance",
    "enabled",
    "flush_to_catalog",
    "gauge",
    "get_registry",
    "histogram",
    "span",
]
