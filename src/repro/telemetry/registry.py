"""Process-local metric registry: counters, gauges, fixed-bucket histograms, spans.

Design contract (mirrors the hot-path doctrine in ``repro.lint``):

* **Alloc-free record paths.**  ``Counter.inc`` / ``Gauge.set`` /
  ``Histogram.record`` touch only preallocated state — the histogram's
  bucket-edge and count arrays are numpy arrays sized at construction,
  and ``record`` does a ``searchsorted`` plus an in-place increment.  No
  dict, list, or array construction happens on the record path; the
  ``telemetry.record-alloc`` lint rule enforces this.
* **Monotonic clock only.**  Spans time with ``time.perf_counter``.
  Nothing in this module reads the wall clock; cross-process timestamps
  are stamped by the catalogue's SQL clock at persist time
  (``Catalog.record_telemetry``).
* **Best-effort under threads.**  Record paths are deliberately
  lock-free (a lost increment under a rare race is acceptable for
  telemetry); the registry lock only guards metric creation, span
  buffering, and snapshot/drain.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

#: Default histogram bucket upper edges, in seconds.  Spans campaign work
#: from sub-millisecond store round-trips to multi-second training cells.
DEFAULT_BUCKET_EDGES = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

#: Cap on buffered spans between flushes; older spans win, new ones are
#: dropped (and counted) so a stuck flusher cannot grow memory unboundedly.
MAX_PENDING_SPANS = 2048


class Counter:
    """Monotonically increasing value (floats allowed for seconds totals)."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def point(self) -> dict:
        return {"name": self.name, "kind": "counter", "value": float(self.value)}

    def reset(self) -> None:
        self.value = 0.0

    @property
    def empty(self) -> bool:
        return self.value == 0.0


class Gauge:
    """Last-write-wins instantaneous value (queue depth, rates)."""

    kind = "gauge"
    __slots__ = ("name", "value", "updated")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.updated = False

    def set(self, value: float) -> None:
        self.value = value
        self.updated = True

    def point(self) -> dict:
        return {"name": self.name, "kind": "gauge", "value": float(self.value)}

    def reset(self) -> None:
        # Gauges keep their last value across flushes; only the dirty bit
        # clears so an unchanged gauge is not re-reported every interval.
        self.updated = False

    @property
    def empty(self) -> bool:
        return not self.updated


class Histogram:
    """Fixed-bucket histogram backed by preallocated numpy arrays.

    ``record`` is alloc-free: a scalar ``searchsorted`` against the
    preallocated edge array plus an in-place count increment.  Bucket ``i``
    counts values ``<= edges[i]``; the final slot is the overflow bucket.
    """

    kind = "histogram"
    __slots__ = ("name", "edges", "counts", "sum", "count")

    def __init__(self, name: str, edges: Sequence[float] = DEFAULT_BUCKET_EDGES) -> None:
        self.name = name
        self.edges = np.asarray(edges, dtype=np.float64)
        if self.edges.ndim != 1 or self.edges.shape[0] == 0:
            raise ValueError("histogram edges must be a non-empty 1-D sequence")
        self.counts = np.zeros(self.edges.shape[0] + 1, dtype=np.int64)
        self.sum = 0.0
        self.count = 0

    def record(self, value: float) -> None:
        self.counts[int(np.searchsorted(self.edges, value))] += 1
        self.sum += value
        self.count += 1

    def point(self) -> dict:
        return {
            "name": self.name,
            "kind": "histogram",
            "value": float(self.sum),
            "count": int(self.count),
            "buckets": {
                "edges": [float(edge) for edge in self.edges],
                "counts": [int(c) for c in self.counts],
            },
        }

    def reset(self) -> None:
        self.counts[:] = 0
        self.sum = 0.0
        self.count = 0

    @property
    def empty(self) -> bool:
        return self.count == 0


Metric = Union[Counter, Gauge, Histogram]


class Span:
    """Context manager timing one operation with ``time.perf_counter``.

    On exit the duration is appended to the owning registry's span buffer;
    the buffer is drained (not reset in place) by the flusher, so spans are
    reported exactly once.
    """

    __slots__ = ("_registry", "name", "labels", "seconds", "_started")

    def __init__(self, registry: "MetricRegistry", name: str, labels: Mapping[str, object]) -> None:
        self._registry = registry
        self.name = name
        self.labels = labels
        self.seconds: Optional[float] = None
        self._started = 0.0

    def __enter__(self) -> "Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._started
        self._registry.record_span(self.name, self.labels, self.seconds)
        return False


class NullMetric:
    """Shared do-nothing stand-in returned when telemetry is disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def record(self, value: float) -> None:
        pass


class NullSpan:
    """Stateless no-op span; a single shared instance is safe to reuse."""

    __slots__ = ()
    seconds = None

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_METRIC = NullMetric()
NULL_SPAN = NullSpan()


class MetricRegistry:
    """Name-keyed store of process-local metrics plus a bounded span buffer."""

    def __init__(self, max_pending_spans: int = MAX_PENDING_SPANS) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}
        self._spans: List[dict] = []
        self._max_pending_spans = max_pending_spans
        self.dropped_spans = 0

    def _get(self, name: str, cls, *args) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {type(metric).__name__}, "
                    f"requested {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str, edges: Optional[Sequence[float]] = None) -> Histogram:
        if edges is None:
            return self._get(name, Histogram)  # type: ignore[return-value]
        return self._get(name, Histogram, edges)  # type: ignore[return-value]

    def span(self, name: str, **labels: object) -> Span:
        return Span(self, name, labels)

    def record_span(self, name: str, labels: Mapping[str, object], seconds: float) -> None:
        with self._lock:
            if len(self._spans) >= self._max_pending_spans:
                self.dropped_spans += 1
                return
            self._spans.append(
                {"name": name, "labels": dict(labels), "seconds": float(seconds)}
            )

    def snapshot(self, reset: bool = True) -> List[dict]:
        """Return points for every metric that changed since the last reset."""
        with self._lock:
            points = []
            for metric in self._metrics.values():
                if metric.empty:
                    continue
                points.append(metric.point())
                if reset:
                    metric.reset()
            return points

    def drain_spans(self) -> List[dict]:
        with self._lock:
            spans, self._spans = self._spans, []
            return spans
