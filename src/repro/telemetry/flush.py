"""Periodic background flusher and persistence sinks for telemetry.

A :class:`TelemetryFlusher` drains the process registry (delta snapshot of
points plus buffered spans) into a *sink* on a fixed interval and once more
at ``stop()``.  Two sinks exist, mirroring the two campaign transports:

* :class:`CatalogSink` — writes directly into ``catalog.sqlite`` via
  ``Catalog.record_telemetry``.  A fresh catalogue connection is opened per
  flush because SQLite connections are thread-bound and the flusher runs on
  its own daemon thread.  Used by ``repro serve`` and local runs/workers.
* :class:`ClientSink` — batches through ``StoreClient.post_telemetry``
  (``POST /api/telemetry``).  Used by ``repro work --server`` processes,
  which by contract never touch the catalogue file.

Telemetry is strictly best-effort: a failing flush is swallowed (never
crashes the host process), and with ``REPRO_TELEMETRY=0`` the flusher does
not even start a thread.
"""

from __future__ import annotations

import os
import socket
import threading
from pathlib import Path
from typing import Callable, List, Optional

from repro.telemetry.registry import MetricRegistry

DEFAULT_FLUSH_INTERVAL_SECONDS = 2.0

#: A sink consumes one flush batch: ``sink(points, spans)``.
Sink = Callable[[List[dict], List[dict]], None]


def default_instance(worker: Optional[str] = None) -> dict:
    """Identity attached to every flushed batch: worker id, host, pid."""
    return {
        "worker": worker or f"{socket.gethostname()}-{os.getpid()}",
        "host": socket.gethostname(),
        "pid": os.getpid(),
    }


class CatalogSink:
    """Persist batches straight into the campaign catalogue."""

    def __init__(
        self,
        catalog_file: Path,
        worker: str,
        host: Optional[str] = None,
        pid: Optional[int] = None,
    ) -> None:
        self.catalog_file = Path(catalog_file)
        self.worker = worker
        self.host = host or socket.gethostname()
        self.pid = pid if pid is not None else os.getpid()

    def __call__(self, points: List[dict], spans: List[dict]) -> None:
        from repro.store.catalog import Catalog

        with Catalog(self.catalog_file) as catalog:
            catalog.record_telemetry(
                self.worker, points, spans, host=self.host, pid=self.pid
            )


class ClientSink:
    """Report batches over HTTP through a :class:`StoreClient`.

    Transport failures are swallowed after the client's own bounded retry
    loop gives up — a flaky network must never take down a worker for the
    sake of metrics.  The batch is simply lost; counters are deltas, so a
    lost batch under-reports rather than corrupts.
    """

    def __init__(
        self,
        client,
        worker: str,
        host: Optional[str] = None,
        pid: Optional[int] = None,
    ) -> None:
        self.client = client
        self.worker = worker
        self.host = host or socket.gethostname()
        self.pid = pid if pid is not None else os.getpid()

    def __call__(self, points: List[dict], spans: List[dict]) -> None:
        from repro.store.client import StoreClientError

        try:
            self.client.post_telemetry(
                self.worker, points, spans, host=self.host, pid=self.pid
            )
        except StoreClientError:
            pass


class TelemetryFlusher:
    """Daemon thread flushing the registry into a sink every ``interval`` s.

    Usable as a context manager; ``stop()`` performs a final flush so
    short-lived processes (one-shot workers, CLI runs) do not lose the tail
    of their metrics.  When telemetry is disabled, ``start()``/``flush()``
    are no-ops.
    """

    def __init__(
        self,
        sink: Sink,
        interval: float = DEFAULT_FLUSH_INTERVAL_SECONDS,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        self.sink = sink
        self.interval = interval
        self._registry = registry
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _resolve_registry(self) -> MetricRegistry:
        if self._registry is not None:
            return self._registry
        from repro import telemetry

        return telemetry.get_registry()

    def flush(self) -> None:
        from repro import telemetry

        if not telemetry.enabled():
            return
        registry = self._resolve_registry()
        points = registry.snapshot(reset=True)
        spans = registry.drain_spans()
        if points or spans:
            self.sink(points, spans)

    def start(self) -> "TelemetryFlusher":
        from repro import telemetry

        if not telemetry.enabled() or self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="telemetry-flush", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.flush()
            except Exception:
                pass  # telemetry must never crash the host process

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        try:
            self.flush()
        except Exception:
            pass

    def __enter__(self) -> "TelemetryFlusher":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def flush_to_catalog(
    catalog_file: Optional[Path],
    worker: Optional[str] = None,
    host: Optional[str] = None,
    pid: Optional[int] = None,
    registry: Optional[MetricRegistry] = None,
) -> None:
    """One-shot drain of the registry into a catalogue (local runs).

    ``worker`` defaults to this process's ``host-pid`` identity; a ``None``
    catalogue path (recording disabled) is a no-op.
    """
    from repro import telemetry

    if catalog_file is None or not telemetry.enabled():
        return
    if worker is None:
        worker = default_instance()["worker"]
    flusher = TelemetryFlusher(
        CatalogSink(catalog_file, worker, host=host, pid=pid), registry=registry
    )
    try:
        flusher.flush()
    except Exception:
        pass  # best-effort: a locked or missing catalogue must not fail the run
