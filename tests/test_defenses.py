"""Tests for the defense subsystem: registry, compiled fragments, defended
cache mechanisms, SoA kernel parity, way-partition isolation, and the
defense_matrix experiment."""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

import repro
from repro.cache.cache import Cache
from repro.cache.config import CacheConfig
from repro.cache.defended import (
    KeyedRemapCache,
    RandomFillCache,
    SkewedCache,
    WayPartitionCache,
    make_cache,
)
from repro.cache.soa import SoACacheEngine, domain_code
from repro.defenses import (
    DefenseSpec,
    get_defense,
    is_defense_registered,
    list_defenses,
    register_defense,
    resolve_defense,
    unregister_defense,
)
from repro.rl.vec_env import VecEnv
from repro.scenarios import ScenarioSpec, get_spec, make, make_factory

BUILTIN_DEFENSES = ("plcache", "keyed-remap", "skew", "way-partition",
                    "random-fill")


class TestDefenseRegistry:
    def test_builtin_catalogue(self):
        registered = list_defenses()
        assert len(registered) >= 5
        for defense_id in BUILTIN_DEFENSES:
            assert defense_id in registered
            assert is_defense_registered(defense_id)

    def test_every_builtin_round_trips_via_json(self):
        for defense_id in list_defenses():
            spec = get_defense(defense_id)
            restored = DefenseSpec.from_json(spec.to_json())
            assert restored == spec
            json.loads(spec.to_json())  # plain data

    def test_register_derive_unregister(self):
        try:
            spec = register_defense(base="keyed-remap",
                                    defense_id="_test-keyed-fast",
                                    rekey_epoch=8)
            assert spec.kind == "keyed_remap"
            assert spec.params["rekey_epoch"] == 8
            env = make("guessing/lru-4way", defense="_test-keyed-fast")
            assert env.backend.cache.rekey_epoch == 8
        finally:
            unregister_defense("_test-keyed-fast")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_defense(defense_id="plcache", kind="plcache")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown defense kind"):
            DefenseSpec(defense_id="x", kind="moat")

    def test_unknown_id_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="unknown defense"):
            resolve_defense("does-not-exist")

    def test_inline_mapping_resolves(self):
        spec = resolve_defense({"kind": "way_partition",
                                "params": {"victim_ways": 1}})
        assert spec.defense_id == "way_partition"  # kind doubles as the id
        assert spec.params == {"victim_ways": 1}


class TestScenarioDefenseField:
    def test_make_with_each_builtin_defense(self):
        expected = {
            "plcache": "PLCache",
            "keyed-remap": "KeyedRemapCache",
            "skew": "SkewedCache",
            "way-partition": "WayPartitionCache",
            "random-fill": "RandomFillCache",
        }
        for defense_id, cache_class in expected.items():
            env = make("guessing/lru-4way-disjoint", defense=defense_id, seed=0)
            assert type(env.backend.cache).__name__ == cache_class, defense_id
            env.reset()
            for action in range(4):
                env.step(action)

    def test_inline_defense_params_reach_the_cache(self):
        env = make("guessing/lru-4way",
                   defense={"kind": "keyed_remap", "params": {"rekey_epoch": 5}})
        assert env.backend.cache.rekey_epoch == 5
        env = make("guessing/lru-4way",
                   defense={"kind": "way_partition", "params": {"victim_ways": 3}})
        assert env.backend.cache.victim_ways == 3

    def test_defense_spec_instance_accepted(self):
        spec = DefenseSpec(defense_id="rf", kind="random_fill",
                           params={"fill_window": 2})
        env = make("guessing/lru-4way", defense=spec)
        assert env.backend.cache.fill_window == 2

    def test_defense_field_round_trips(self):
        spec = get_spec("guessing/lru-4way").with_overrides(defense="keyed-remap")
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        inline = spec.with_overrides(defense={"kind": "skew", "params": {}})
        assert ScenarioSpec.from_dict(inline.to_dict()) == inline

    def test_legacy_pl_locked_addresses_still_loads(self):
        # Specs serialized before the defense layer carried PL locks as a
        # bespoke field; from_dict folds them into the generic defense.
        legacy = {
            "scenario_id": "legacy/pl",
            "cache": {"num_sets": 1, "num_ways": 4, "rep_policy": "plru",
                      "lockable": True},
            "env_kwargs": {"attacker_addr_s": 1, "attacker_addr_e": 5},
            "pl_locked_addresses": [0],
        }
        spec = ScenarioSpec.from_dict(legacy)
        assert spec.defense is not None
        env = spec.build(seed=0)
        env.reset()
        assert env.backend.pl_locked_addresses == [0]
        assert env.backend.cache.contains(0)
        # The re-serialized form uses the defense field and round-trips.
        assert "pl_locked_addresses" not in spec.to_dict()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_plcache_defense_locks_the_victim_range(self):
        env = make("guessing/quickstart", defense="plcache")
        env.reset()
        assert env.backend.pl_locked_addresses == [0, 1]
        assert env.backend.cache.contains(0) and env.backend.cache.contains(1)

    def test_migrated_table7_scenarios(self):
        pl = get_spec("guessing/plcache-plru-4way")
        assert pl.defense == "plcache"
        env = make(pl)
        env.reset()
        assert env.backend.pl_locked_addresses == [0]
        baseline = get_spec("guessing/plcache-baseline-4way")
        assert baseline.defense is None
        assert make(baseline).backend.pl_locked_addresses == []

    def test_defended_family_registered_and_constructible(self):
        family = repro.list_scenarios("defended/")
        assert len(family) == 15
        for scenario_id in family:
            assert get_spec(scenario_id).defense is not None

    def test_blackbox_defense_rejected(self):
        with pytest.raises(ValueError, match="blackbox"):
            get_spec("blackbox/core-i7-6700-l1d").with_overrides(
                defense="keyed-remap")

    def test_custom_defense_can_add_wrappers(self):
        from repro.defenses.spec import CompiledDefense
        from repro.env.wrappers import MissCountDetectionWrapper

        class WrapperDefense(DefenseSpec):
            def compile(self, scenario=None):
                return CompiledDefense(wrappers=({"type": "miss_count"},))

        spec = get_spec("guessing/lru-4way").with_overrides(
            defense=WrapperDefense(defense_id="wrapped", kind="random_fill"))
        # Normalized to plain data on the spec; resolution returns the base
        # DefenseSpec, so this exercises the wrapper fragment path directly.
        compiled = WrapperDefense(defense_id="wrapped",
                                  kind="random_fill").compile(spec)
        assert compiled.wrappers == ({"type": "miss_count"},)
        env = MissCountDetectionWrapper(make("guessing/lru-4way"))
        assert env is not None


class TestDefendedCacheBehavior:
    def test_keyed_remap_rekeys_and_flushes_every_epoch(self):
        config = CacheConfig(num_sets=1, num_ways=4,
                             extra={"defense": {"kind": "keyed_remap",
                                                "rekey_epoch": 4}})
        cache = KeyedRemapCache(config, rng=np.random.default_rng(0))
        first_key = cache.mapping.key
        for address in (1, 2, 3):
            cache.access(address)
        assert cache.contents() == [1, 2, 3]
        cache.access(4)  # 4th access closes the epoch
        assert cache.contents() == []
        assert cache.mapping.key != first_key

    def test_keyed_remap_reset_draws_a_fresh_key(self):
        config = CacheConfig(num_sets=4, num_ways=2,
                             extra={"defense": {"kind": "keyed_remap"}})
        cache = KeyedRemapCache(config, rng=np.random.default_rng(3))
        key = cache.mapping.key
        cache.reset()
        assert cache.mapping.key != key

    def test_skew_lookup_spans_hash_groups(self):
        config = CacheConfig(num_sets=8, num_ways=4,
                             extra={"defense": {"kind": "skew", "groups": 2}})
        cache = SkewedCache(config, rng=np.random.default_rng(1))
        for address in range(12):
            cache.access(address)
        for address in range(12):
            resident = cache.contains(address)
            if resident:
                assert cache.access(address).hit  # found across groups
        # Flush removes the single resident copy.
        resident = [a for a in range(12) if cache.contains(a)]
        assert resident, "random fills should keep some lines resident"
        assert cache.flush(resident[0])
        assert not cache.contains(resident[0])

    def test_skew_group_size_must_divide_ways(self):
        config = CacheConfig(num_ways=4,
                             extra={"defense": {"kind": "skew", "groups": 3}})
        with pytest.raises(ValueError, match="evenly divide"):
            SkewedCache(config)

    def test_random_fill_never_installs_the_demand_line(self):
        config = CacheConfig(num_sets=4, num_ways=2,
                             extra={"defense": {"kind": "random_fill",
                                                "fill_window": 4}})
        cache = RandomFillCache(config, rng=np.random.default_rng(0))
        for address in (0, 8, 16, 24):
            result = cache.access(address)
            assert result.miss and result.way == -1
            assert not cache.contains(address)  # fills land on a+1..a+window
        assert cache.contents(), "neighbor lines should have been filled"

    def test_way_partition_confines_fills(self):
        config = CacheConfig(num_sets=1, num_ways=4,
                             extra={"defense": {"kind": "way_partition",
                                                "victim_ways": 2}})
        cache = WayPartitionCache(config, rng=np.random.default_rng(0))
        for address in range(8):
            assert cache.access(address, domain="attacker").way in (2, 3)
        for address in range(8, 12):
            assert cache.access(address, domain="victim").way in (0, 1)

    def test_way_partition_bounds_validated(self):
        config = CacheConfig(num_ways=4,
                             extra={"defense": {"kind": "way_partition",
                                                "victim_ways": 4}})
        with pytest.raises(ValueError, match="victim_ways"):
            WayPartitionCache(config)

    def test_make_cache_dispatch(self):
        assert isinstance(make_cache(CacheConfig()), Cache)
        assert isinstance(
            make_cache(CacheConfig(extra={"defense": {"kind": "keyed_remap"}})),
            KeyedRemapCache)
        with pytest.raises(ValueError, match="unknown defense kind"):
            make_cache(CacheConfig(extra={"defense": {"kind": "moat"}}))

    def test_defended_caches_reject_prefetchers_and_locks(self):
        for kind in ("keyed_remap", "skew", "way_partition", "random_fill"):
            with pytest.raises(ValueError, match="prefetcher"):
                make_cache(CacheConfig(prefetcher="nextline",
                                       extra={"defense": {"kind": kind}}))
            with pytest.raises(ValueError, match="PL locking"):
                make_cache(CacheConfig(lockable=True,
                                       extra={"defense": {"kind": kind}}))


def drive_defended_pair(config: CacheConfig, cache_class, steps: int = 300,
                        max_address: int = 24, num_envs: int = 3,
                        base_seed: int = 40):
    """Seeded-trace parity: SoA engine vs per-env defended object caches."""
    engine = SoACacheEngine(
        config, num_envs,
        rngs=[np.random.default_rng(base_seed + i) for i in range(num_envs)])
    caches = [cache_class(config, rng=np.random.default_rng(base_seed + i))
              for i in range(num_envs)]
    trace_rng = np.random.default_rng(7)
    addr_rngs = [np.random.default_rng(100 + i) for i in range(num_envs)]
    env_indices = np.arange(num_envs)
    for step in range(steps):
        op = ("access", "access", "access", "flush")[int(trace_rng.integers(4))]
        addresses = np.array([int(rng.integers(max_address)) for rng in addr_rngs])
        domain = ("attacker", "victim")[int(trace_rng.integers(2))]
        domains = np.full(num_envs, domain_code(domain), dtype=np.int8)
        if op == "access":
            hit, way, evicted_addr, evicted_dom = engine.access(
                env_indices, addresses, domains)
            for i, cache in enumerate(caches):
                result = cache.access(int(addresses[i]), domain=domain)
                assert bool(hit[i]) == result.hit, (step, i)
                assert int(way[i]) == result.way, (step, i)
        else:
            resident = engine.flush(env_indices, addresses)
            for i, cache in enumerate(caches):
                assert bool(resident[i]) == cache.flush(int(addresses[i]),
                                                        domain=domain), (step, i)
        for i, cache in enumerate(caches):
            for set_index in range(config.num_sets):
                assert engine.replacement_state(i, set_index) == \
                    cache.replacement_state(set_index), (step, i, set_index)
    for i, cache in enumerate(caches):
        assert engine.contents(i) == cache.contents(), i
        assert engine.access_count[i] == cache.access_count, i
        assert engine.miss_count[i] == cache.miss_count, i


class TestSoAKernelParity:
    @pytest.mark.parametrize("policy", ["lru", "plru", "rrip", "random", "mru"])
    def test_keyed_remap_across_epoch_boundaries(self, policy):
        # rekey_epoch=7 with 300 accesses crosses dozens of epoch boundaries,
        # exercising key draws, invalidation, and state resets on both paths.
        config = CacheConfig(num_sets=4, num_ways=4, rep_policy=policy,
                             extra={"defense": {"kind": "keyed_remap",
                                                "rekey_epoch": 7}})
        drive_defended_pair(config, KeyedRemapCache, max_address=48)

    @pytest.mark.parametrize("policy", ["lru", "mru"])
    @pytest.mark.parametrize("num_sets,victim_ways", [(1, 1), (2, 2)])
    def test_way_partition(self, policy, num_sets, victim_ways):
        config = CacheConfig(num_sets=num_sets, num_ways=4, rep_policy=policy,
                             extra={"defense": {"kind": "way_partition",
                                                "victim_ways": victim_ways}})
        drive_defended_pair(config, WayPartitionCache, max_address=16)

    def test_scalar_warm_up_crosses_epoch_boundary(self):
        config = CacheConfig(num_sets=2, num_ways=4,
                             extra={"defense": {"kind": "keyed_remap",
                                                "rekey_epoch": 4}})
        scalar = SoACacheEngine(config, 1, rngs=[np.random.default_rng(5)])
        vector = SoACacheEngine(config, 1, rngs=[np.random.default_rng(5)])
        trace = [1, 5, 3, 1, 7, 2, 5, 0, 3, 6]  # 10 accesses, 2 rekeys
        scalar.warm_up_from_empty(0, trace)
        vector.warm_up(np.array([0]), np.array([trace]))
        assert scalar.contents(0) == vector.contents(0)
        assert int(scalar._keys[0]) == int(vector._keys[0])
        assert int(scalar._rekey_counter[0]) == int(vector._rekey_counter[0])
        for set_index in range(config.num_sets):
            assert scalar.replacement_state(0, set_index) == \
                vector.replacement_state(0, set_index)

    def test_unsupported_defense_kind_rejected_by_engine(self):
        with pytest.raises(ValueError, match="defense kind"):
            SoACacheEngine(CacheConfig(extra={"defense": {"kind": "skew",
                                                          "groups": 2}}), 1)
        with pytest.raises(ValueError, match="lru/mru"):
            SoACacheEngine(CacheConfig(rep_policy="plru", num_ways=4,
                                       extra={"defense":
                                              {"kind": "way_partition",
                                               "victim_ways": 2}}), 1)

    @pytest.mark.parametrize("scenario,overrides", [
        ("defended/lru-4way-keyed-remap", {}),
        ("defended/lru-4way-keyed-remap",
         {"defense": {"kind": "keyed_remap", "params": {"rekey_epoch": 5}}}),
        ("defended/lru-4way-way-partition", {}),
    ])
    def test_vec_env_batched_matches_object(self, scenario, overrides):
        batched = VecEnv(scenario, num_envs=4, **overrides)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            reference = VecEnv(scenario, num_envs=4, backend="object",
                               **overrides)
        assert batched.batched and not reference.batched
        np.testing.assert_array_equal(batched.reset(), reference.reset())
        rng = np.random.default_rng(11)
        for _ in range(150):
            actions = rng.integers(batched.num_actions, size=4)
            obs_b, rew_b, done_b, infos_b = batched.step(actions)
            obs_r, rew_r, done_r, infos_r = reference.step(actions)
            np.testing.assert_array_equal(obs_b, obs_r)
            np.testing.assert_array_equal(rew_b, rew_r)
            np.testing.assert_array_equal(done_b, done_r)
            for info_b, info_r in zip(infos_b, infos_r):
                assert info_b.get("episode") == info_r.get("episode")

    def test_defended_training_is_bit_identical_across_backends(self):
        # The acceptance contract of the SoA kernels: PPO training on the
        # batched path equals the object path parameter-for-parameter.
        from repro.rl.ppo import PPOConfig
        from repro.rl.trainer import PPOTrainer

        def train(backend_override):
            trainer = PPOTrainer(
                make_factory("defended/lru-4way-keyed-remap",
                             **backend_override),
                PPOConfig(horizon=32, num_envs=4, minibatch_size=64,
                          update_epochs=2),
                hidden_sizes=(16,), seed=3)
            trainer.train(max_updates=3, eval_every=10, eval_episodes=2)
            return trainer.policy.parameters()

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            reference = train({"backend": "object"})
        fast = train({})
        for p_fast, p_ref in zip(fast, reference):
            np.testing.assert_array_equal(p_fast.data, p_ref.data)


class TestWayPartitionIsolation:
    def test_observations_independent_of_secret(self):
        # Full isolation: with disjoint address ranges, every attacker
        # observation sequence is identical whether the victim accessed its
        # line or not — the attacker cannot beat chance.
        env_secret = make("defended/lru-4way-way-partition", seed=0)
        env_empty = make("defended/lru-4way-way-partition", seed=0)
        rng = np.random.default_rng(4)
        trigger = env_secret.actions.trigger_index
        non_guess = [i for i, a in enumerate(env_secret.actions)
                     if i not in env_secret.actions.guess_indices]
        for _episode in range(6):
            obs_a = env_secret.reset(secret=0)
            obs_b = env_empty.reset(secret=None)
            np.testing.assert_array_equal(obs_a, obs_b)
            for _step in range(env_secret.max_steps - 1):
                action = int(non_guess[int(rng.integers(len(non_guess)))])
                if _step == 2:
                    action = trigger
                result_a = env_secret.step(action)
                result_b = env_empty.step(action)
                np.testing.assert_array_equal(result_a.observation,
                                              result_b.observation)
                assert result_a.reward == result_b.reward
                if result_a.done:
                    break

    def test_partitioned_scripted_attack_is_at_chance(self):
        from repro.attacks.evaluate import evaluate_action_sequence

        env = make("defended/lru-4way-way-partition", seed=0)
        # The undefended distinguishing sequence: prime, trigger, evict, probe,
        # guess.  Against the partitioned cache it cannot beat chance; with
        # 2 equiprobable secrets and 400 trials, binomial bounds give
        # [0.35, 0.65] with overwhelming probability.
        access = [i for i, a in enumerate(env.actions)
                  if i not in env.actions.guess_indices
                  and i != env.actions.trigger_index]
        sequence = access[:3] + [env.actions.trigger_index] + access[3:4] \
            + access[:2] + [env.actions.guess_indices[0]]
        accuracy, _ = evaluate_action_sequence(env, sequence, trials=400)
        assert 0.35 <= accuracy <= 0.65, accuracy


class TestCapabilityHook:
    def test_spec_supports_soa(self):
        assert get_spec("guessing/lru-4way").supports_soa()
        assert get_spec("defended/lru-4way-keyed-remap").supports_soa()
        assert get_spec("defended/lru-4way-way-partition").supports_soa()
        assert get_spec("defended/plru-4way-keyed-remap").supports_soa()
        # way-partition kernel is lru/mru only; plru falls back.
        assert not get_spec("defended/plru-4way-way-partition").supports_soa()
        assert not get_spec("defended/lru-4way-skew").supports_soa()
        assert not get_spec("defended/lru-4way-random-fill").supports_soa()
        assert not get_spec("defended/lru-4way-plcache").supports_soa()
        assert not get_spec("covert/prime-probe").supports_soa()
        assert not get_spec("guessing/lru-4way").with_overrides(
            backend="object").supports_soa()
        assert not get_spec("covert/prime-probe-cchunter").supports_soa()

    def test_vec_env_batches_soa_capable_defenses(self):
        vec = VecEnv("defended/lru-4way-keyed-remap", num_envs=4)
        assert vec.batched
        vec = VecEnv("defended/lru-4way-way-partition", num_envs=4)
        assert vec.batched

    def test_vec_env_warns_and_falls_back_for_non_soa_defense(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            vec = VecEnv("defended/lru-4way-skew", num_envs=4)
        assert not vec.batched
        assert any("no SoA batched kernel" in str(w.message) for w in caught)
        # An explicit object backend is not blamed on the defense.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            VecEnv("defended/lru-4way-keyed-remap", num_envs=4,
                   backend="object")
        assert not any("no SoA batched kernel" in str(w.message)
                       for w in caught)

    def test_config_level_fragment_check(self):
        from repro.env.batched_env import config_supports_batching

        keyed = get_spec("defended/lru-4way-keyed-remap").build_config()
        assert config_supports_batching(keyed)
        skew = get_spec("defended/lru-4way-skew").build_config()
        assert not config_supports_batching(skew)


class TestDefenseMatrixExperiment:
    def test_registered_with_full_grid(self):
        spec = repro.get_experiment("defense_matrix")
        cells = spec.cells("smoke")
        scenarios = {cell["scenario"] for cell in cells}
        defenses = {cell["defense"] for cell in cells}
        assert len(scenarios) >= 2
        assert len(defenses - {"none"}) >= 4
        assert len(cells) == len(scenarios) * len(defenses)

    def test_run_cell_reports_matrix_metrics(self, tmp_path):
        from repro.experiments import defense_matrix
        from repro.experiments.common import ExperimentScale

        tiny = ExperimentScale(name="tiny", max_updates=2, horizon=16,
                               num_envs=2, eval_episodes=4, runs=1,
                               hidden_sizes=(8,), minibatch_size=16,
                               update_epochs=1)
        row = defense_matrix.run_cell(
            {"scenario": "guessing/lru-4way-disjoint",
             "defense": "way-partition"}, tiny, seed=0)
        assert row["scenario"] == "guessing/lru-4way-disjoint"
        assert row["defense"] == "way-partition"
        assert 0.0 <= row["accuracy"] <= 1.0
        assert row["bits_per_episode"] >= 0.0
        # Full isolation: even the scripted probe sits at chance.
        assert row["probe_accuracy"] <= 0.65
        assert defense_matrix.format_results([row])

    def test_probe_reproduces_table7_attack_and_isolation(self):
        # The scripted replacement-state probe is the fast, deterministic
        # carrier of the matrix's security claims: undefended leaks fully,
        # the PLRU PL cache is still attackable (Table VII) while the LRU PL
        # cache is secure, way partitioning pins the probe at chance, and
        # keyed remapping protects the multi-set partial-footprint cache.
        from repro.attacks.evaluate import evaluate_action_sequence
        from repro.experiments.defense_matrix import replacement_probe_sequence

        def probe(scenario, defense=None):
            overrides = {"warmup_accesses": 0}
            if defense:
                overrides["defense"] = defense
            env = make(scenario, seed=0, **overrides)
            accuracy, _ = evaluate_action_sequence(
                env, replacement_probe_sequence(env), trials=40)
            return accuracy

        assert probe("guessing/plcache-baseline-4way") == 1.0
        assert probe("guessing/plcache-baseline-4way", "plcache") == 1.0
        assert probe("guessing/plcache-baseline-4way", "way-partition") == 0.5
        assert probe("guessing/lru-4way-disjoint", "plcache") == 0.5
        assert probe("guessing/sa-4set-2way") == 1.0
        assert probe("guessing/sa-4set-2way", "keyed-remap") <= 0.75

    def test_guess_channel_bits(self):
        from repro.analysis.defenses import guess_channel_bits

        assert guess_channel_bits(0.5, 2) == pytest.approx(0.0)
        assert guess_channel_bits(1.0, 2) == pytest.approx(1.0, abs=1e-6)
        assert guess_channel_bits(0.25, 4) == pytest.approx(0.0, abs=1e-6)
        assert guess_channel_bits(1.0, 4) == pytest.approx(2.0, abs=1e-6)
        assert guess_channel_bits(0.9, 2) > guess_channel_bits(0.6, 2)
        # Below-chance (e.g. a never-guessing agent) is 0 leaked bits, not
        # an anti-correlated "informative" channel.
        assert guess_channel_bits(0.0, 2) == 0.0
        assert guess_channel_bits(0.1, 4) == 0.0

    def test_pivot_matrix_rendering(self):
        from repro.analysis.defenses import pivot_matrix

        rows = [{"scenario": "s1", "defense": "none", "accuracy": 1.0},
                {"scenario": "s1", "defense": "way-partition", "accuracy": 0.5}]
        text = pivot_matrix(rows, "accuracy")
        assert "way-partition" in text and "1.000" in text and "0.500" in text
