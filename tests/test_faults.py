"""Chaos tests: crash-safe artifacts, fault injection, retries, and timeouts.

The training scenarios run ``table5`` at SMOKE scale (3 PPO cells,
checkpoints every 2 of 6 updates) under seeded :class:`FaultPlan`\\ s and
assert the recovered campaign's rows are bit-identical to an unfaulted run.
The failure-isolation scenarios use the training-free ``tests/chaos_driver``
experiment, whose cells fail/stall/heal on demand.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.rl.stats import dump_json
from repro.runs import (
    CampaignInterrupted,
    ExperimentSpec,
    Fault,
    FaultPlan,
    campaign_status,
    quarantined_files,
    stray_tmp_files,
)
from repro.runs.artifacts import (
    CorruptArtifactError,
    atomic_write_json,
    atomic_write_pickle,
    clear_quarantine,
    load_json,
    load_pickle,
    quarantine_log_entries,
    verify_artifact,
)
from repro.runs.cli import main as cli_main
from repro.runs.faults import (
    FAULT_PLAN_ENV_VAR,
    NET_CHAOS_ENV_VAR,
    NetworkChaosPlan,
    NetworkFault,
    resolve_fault_plan,
    resolve_network_chaos_plan,
)


def chaos_spec(*cells: dict) -> ExperimentSpec:
    return ExperimentSpec(experiment_id="chaos", driver="chaos_driver",
                          columns=("name", "value"), grid=cells,
                          default_scale="smoke")


def assert_clean_tree(out_dir) -> None:
    """No stray temp files and no live quarantined corpses."""
    assert stray_tmp_files(out_dir) == []
    assert quarantined_files(out_dir) == []


# --------------------------------------------------------------------------
class TestAtomicArtifacts:
    def test_json_roundtrip_with_checksum(self, tmp_path):
        path = tmp_path / "a.json"
        atomic_write_json(path, {"x": 1}, indent=2)
        assert (tmp_path / "a.json.sha256").exists()
        assert verify_artifact(path) is True
        assert load_json(path) == {"x": 1}
        assert stray_tmp_files(tmp_path) == []

    def test_tampered_file_quarantined(self, tmp_path):
        path = tmp_path / "a.json"
        atomic_write_json(path, {"x": 1})
        path.write_text('{"x": 2}')  # silent corruption under the sidecar
        assert verify_artifact(path) is False
        with pytest.raises(CorruptArtifactError, match="checksum mismatch"):
            load_json(path)
        assert not path.exists()
        assert (tmp_path / "a.json.corrupt-0").exists()
        entries = quarantine_log_entries(tmp_path)
        assert entries and entries[0]["artifact"] == "a.json"

    def test_truncated_file_quarantined(self, tmp_path):
        path = tmp_path / "a.json"
        atomic_write_json(path, {"payload": list(range(100))})
        with open(path, "r+b") as stream:
            stream.truncate(17)
        with pytest.raises(CorruptArtifactError):
            load_json(path)
        assert quarantined_files(tmp_path) == [tmp_path / "a.json.corrupt-0"]

    def test_legacy_file_without_sidecar_accepted(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text('{"x": 3}')
        assert verify_artifact(path) is None
        assert load_json(path) == {"x": 3}

    def test_legacy_unparseable_file_quarantined(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text('{"x": ')
        with pytest.raises(CorruptArtifactError, match="unparseable"):
            load_json(path)
        assert not path.exists()

    def test_pickle_bit_flip_detected(self, tmp_path):
        path = tmp_path / "a.pkl"
        atomic_write_pickle(path, {"weights": [1.0, 2.0]})
        assert load_pickle(path) == {"weights": [1.0, 2.0]}
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x10
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptArtifactError):
            load_pickle(path)

    def test_clear_quarantine_keeps_log(self, tmp_path):
        path = tmp_path / "a.json"
        atomic_write_json(path, {"x": 1})
        path.write_text("junk")
        with pytest.raises(CorruptArtifactError):
            load_json(path)
        assert clear_quarantine(tmp_path) == 1
        assert quarantined_files(tmp_path) == []
        assert quarantine_log_entries(tmp_path)  # history survives recovery


# --------------------------------------------------------------------------
class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = FaultPlan(faults=(
            Fault(kind="kill", cell=1, at_update=2),
            Fault(kind="torn-write", artifact="result", then_kill=False),
            Fault(kind="stall", cell=0, delay_seconds=3.5),
        ), seed=7)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(kind="meteor")
        with pytest.raises(ValueError, match="unknown artifact kind"):
            Fault(kind="kill", artifact="universe")
        with pytest.raises(ValueError, match="unknown Fault fields"):
            Fault.from_dict({"kind": "kill", "bogus": 1})
        with pytest.raises(ValueError, match="unknown FaultPlan fields"):
            FaultPlan.from_dict({"faults": [], "rng": 3})

    def test_resolution_precedence(self, tmp_path):
        plan = FaultPlan(faults=(Fault(kind="kill", at_update=4),), seed=1)
        assert resolve_fault_plan(plan, None, {}) is plan
        assert resolve_fault_plan(plan.to_dict(), None, {}) == plan
        assert resolve_fault_plan(plan.to_json(), None, {}) == plan
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(plan.to_json())
        assert resolve_fault_plan(str(plan_file), None, {}) == plan
        # env var: inline JSON or a file path; the explicit argument wins
        env = {FAULT_PLAN_ENV_VAR: plan.to_json()}
        assert resolve_fault_plan(None, None, env) == plan
        assert resolve_fault_plan(None, None, {FAULT_PLAN_ENV_VAR: str(plan_file)}) == plan
        other = FaultPlan(seed=9)
        assert resolve_fault_plan(other, None, env) is other
        # legacy hook becomes a repeating kill plan; loses to both channels
        legacy = resolve_fault_plan(None, 3, {})
        assert legacy.faults[0] == Fault(kind="kill", at_update=3, once=False)
        assert resolve_fault_plan(None, 3, env) == plan
        assert resolve_fault_plan(None, None, {}) is None


# --------------------------------------------------------------------------
class TestNetworkChaosPlan:
    def test_json_roundtrip(self):
        plan = NetworkChaosPlan(faults=(
            NetworkFault(kind="reset", at_request=1, op="claim"),
            NetworkFault(kind="drop-response", op="complete"),
            NetworkFault(kind="stall", at_request=4, delay_seconds=2.5),
        ), seed=3)
        assert NetworkChaosPlan.from_json(plan.to_json()) == plan

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown network fault kind"):
            NetworkFault(kind="carrier-pigeon")
        with pytest.raises(ValueError, match="at_request"):
            NetworkFault(kind="reset", at_request=-1)
        with pytest.raises(ValueError, match="unknown NetworkChaosPlan"):
            NetworkChaosPlan.from_dict({"faults": [], "rng": 1})

    def test_resolution_precedence(self, tmp_path):
        plan = NetworkChaosPlan(faults=(
            NetworkFault(kind="duplicate", at_request=2, op="complete"),))
        assert resolve_network_chaos_plan(plan, {}) is plan
        assert resolve_network_chaos_plan(plan.to_dict(), {}) == plan
        assert resolve_network_chaos_plan(plan.to_json(), {}) == plan
        plan_file = tmp_path / "net.json"
        plan_file.write_text(plan.to_json())
        assert resolve_network_chaos_plan(str(plan_file), {}) == plan
        # env var: inline JSON or a file path; the explicit argument wins
        env = {NET_CHAOS_ENV_VAR: plan.to_json()}
        assert resolve_network_chaos_plan(None, env) == plan
        assert resolve_network_chaos_plan(
            None, {NET_CHAOS_ENV_VAR: str(plan_file)}) == plan
        other = NetworkChaosPlan(seed=5)
        assert resolve_network_chaos_plan(other, env) is other
        assert resolve_network_chaos_plan(None, {}) is None


# --------------------------------------------------------------------------
@pytest.fixture(scope="module")
def table5_baseline(tmp_path_factory):
    """Unfaulted serial table5 SMOKE rows — the bit-identity reference."""
    out = tmp_path_factory.mktemp("baseline") / "table5"
    return dump_json(repro.run("table5", scale="smoke", out_dir=out).rows)


class TestChaosTrainingCampaigns:
    """Seeded fault matrix over table5 SMOKE: recover, then match baseline."""

    @pytest.mark.parametrize("boundary", [2, 4, 6])
    def test_kill_at_each_checkpoint_boundary(self, tmp_path, table5_baseline,
                                              boundary):
        plan = FaultPlan(faults=(
            Fault(kind="kill", cell=1, artifact="checkpoint", at_update=boundary),))
        with pytest.raises(CampaignInterrupted, match="injected kill"):
            repro.run("table5", scale="smoke", out_dir=tmp_path, fault_plan=plan)
        assert campaign_status(tmp_path)["status"] in ("in-flight", "pending")
        # Resume under the SAME plan: the fired marker prevents re-injection.
        resumed = repro.run("table5", scale="smoke", out_dir=tmp_path,
                            fault_plan=plan)
        assert dump_json(resumed.rows) == table5_baseline
        assert_clean_tree(tmp_path)

    def test_checkpoint_bit_flip_quarantined_on_resume(self, tmp_path,
                                                       table5_baseline):
        plan = FaultPlan(faults=(
            Fault(kind="bit-flip", cell=0, artifact="checkpoint", at_update=2),),
            seed=11)
        with pytest.raises(CampaignInterrupted):
            repro.run("table5", scale="smoke", out_dir=tmp_path, fault_plan=plan)
        resumed = repro.run("table5", scale="smoke", out_dir=tmp_path,
                            fault_plan=plan)
        assert dump_json(resumed.rows) == table5_baseline
        # The flipped checkpoint was detected and quarantined (the corpse is
        # cleared after the cell recovers; the log keeps the event).
        reasons = [e["reason"] for e in quarantine_log_entries(tmp_path)]
        assert any("checksum mismatch" in reason for reason in reasons)
        assert_clean_tree(tmp_path)

    def test_torn_training_result_rebuilt_from_checkpoint(self, tmp_path,
                                                          table5_baseline):
        plan = FaultPlan(faults=(
            Fault(kind="torn-write", cell=0, artifact="training-result"),), seed=3)
        with pytest.raises(CampaignInterrupted):
            repro.run("table5", scale="smoke", out_dir=tmp_path, fault_plan=plan)
        resumed = repro.run("table5", scale="smoke", out_dir=tmp_path,
                            fault_plan=plan)
        assert dump_json(resumed.rows) == table5_baseline
        assert quarantine_log_entries(tmp_path)
        assert_clean_tree(tmp_path)

    def test_legacy_interrupt_hook_still_resumes(self, tmp_path, table5_baseline):
        with pytest.raises(CampaignInterrupted):
            repro.run("table5", scale="smoke", out_dir=tmp_path,
                      interrupt_after_updates=3)
        assert campaign_status(tmp_path)["status"] == "in-flight"
        resumed = repro.run("table5", scale="smoke", out_dir=tmp_path)
        assert dump_json(resumed.rows) == table5_baseline


class TestChaosFastCampaigns:
    def test_torn_result_json_rerun_on_resume(self, tmp_path):
        reference = repro.run("fig4", scale="smoke", out_dir=tmp_path / "ref")
        plan = FaultPlan(faults=(
            Fault(kind="torn-write", cell=1, artifact="result"),), seed=5)
        out = tmp_path / "faulted"
        with pytest.raises(CampaignInterrupted):
            repro.run("fig4", scale="smoke", out_dir=out, fault_plan=plan)
        resumed = repro.run("fig4", scale="smoke", out_dir=out, fault_plan=plan)
        assert dump_json(resumed.rows) == dump_json(reference.rows)
        reasons = [e["reason"] for e in quarantine_log_entries(out)]
        assert reasons, "torn result.json must be quarantined, not accepted"
        assert_clean_tree(out)

    def test_kill_after_result_commit_resumes_cached(self, tmp_path):
        # A crash right after the row landed: resume serves it from cache.
        plan = FaultPlan(faults=(Fault(kind="kill", cell=0, artifact="result"),))
        with pytest.raises(CampaignInterrupted):
            repro.run("fig4", scale="smoke", out_dir=tmp_path, fault_plan=plan)
        resumed = repro.run("fig4", scale="smoke", out_dir=tmp_path,
                            fault_plan=plan)
        assert resumed.cells[0]["status"] == "cached"
        assert_clean_tree(tmp_path)


# --------------------------------------------------------------------------
class TestFailureIsolation:
    def test_strict_aggregates_every_failed_cell(self, tmp_path):
        spec = chaos_spec({"mode": "ok", "name": "a"},
                          {"mode": "fail", "name": "b"},
                          {"mode": "fail", "name": "c"})
        with pytest.raises(RuntimeError, match="2 campaign cell") as excinfo:
            repro.run(spec, scale="smoke", out_dir=tmp_path)
        assert "cell 1" in str(excinfo.value) and "cell 2" in str(excinfo.value)
        for index in (1, 2):
            record = json.loads(
                (tmp_path / "cells" / f"c{index:02d}-fail-{'bc'[index-1]}"
                 / "error.json").read_text())
            assert record["status"] == "failed"
            assert record["error_type"] == "RuntimeError"
            assert "told to fail" in record["traceback"]

    def test_lenient_partial_rows_and_resume_reattempts_only_failed(
            self, tmp_path, monkeypatch):
        spec = chaos_spec({"mode": "ok", "name": "a"},
                          {"mode": "fail", "name": "b"})
        partial = repro.run(spec, scale="smoke", out_dir=tmp_path, strict=False)
        assert partial.partial and not partial.strict
        assert partial.rows[0] is not None and partial.rows[1] is None
        assert [c["status"] for c in partial.cells] == ["completed", "failed"]
        assert partial.errors[0]["index"] == 1
        assert "1 cell(s) failed" in partial.format_results()
        assert not (tmp_path / "results.json").exists()
        status = campaign_status(tmp_path)
        assert status["failed"] == 1 and status["status"] == "failed"

        monkeypatch.setenv("CHAOS_HEAL", "1")
        healed = repro.run(spec, scale="smoke", out_dir=tmp_path, strict=False)
        # only the failed cell re-ran; the good one came from its artifact
        assert [c["status"] for c in healed.cells] == ["cached", "completed"]
        assert all(row is not None for row in healed.rows)
        assert (tmp_path / "results.json").exists()
        assert campaign_status(tmp_path)["status"] == "complete"
        assert_clean_tree(tmp_path)

    def test_retry_budget_and_cumulative_attempts(self, tmp_path):
        spec = chaos_spec({"mode": "flaky", "name": "a", "fails": 2})
        partial = repro.run(spec, scale="smoke", out_dir=tmp_path,
                            strict=False, max_attempts=2, retry_backoff=0.0)
        record = json.loads((tmp_path / "cells" / "c00-flaky-a-2"
                             / "error.json").read_text())
        assert record["attempt"] == 2
        assert partial.cells[0]["status"] == "failed"
        # The resume's attempt counter continues where the budget left off:
        # the third call succeeds and the failure record is retired.
        healed = repro.run(spec, scale="smoke", out_dir=tmp_path)
        assert healed.cells[0]["status"] == "completed"
        assert not (tmp_path / "cells" / "c00-flaky-a-2" / "error.json").exists()

    def test_retry_budget_recovers_within_one_run(self, tmp_path):
        spec = chaos_spec({"mode": "flaky", "name": "a", "fails": 2})
        campaign = repro.run(spec, scale="smoke", out_dir=tmp_path,
                             max_attempts=3, retry_backoff=0.0)
        assert campaign.cells[0]["status"] == "completed"
        assert campaign.rows[0]["name"] == "a"

    def test_keyboard_interrupt_propagates(self, tmp_path):
        spec = chaos_spec({"mode": "interrupt", "name": "a"})
        with pytest.raises(KeyboardInterrupt):
            repro.run(spec, scale="smoke", out_dir=tmp_path, strict=False)


class TestWatchdogTimeout:
    def test_stalled_worker_killed_and_recovered(self, tmp_path):
        plan = FaultPlan(faults=(
            Fault(kind="stall", cell=0, delay_seconds=30.0),))
        spec = chaos_spec({"mode": "ok", "name": "a"},
                          {"mode": "ok", "name": "b"})
        partial = repro.run(spec, scale="smoke", out_dir=tmp_path, strict=False,
                            workers=2, timeout=1.5, fault_plan=plan)
        assert [c["status"] for c in partial.cells] == ["timeout", "completed"]
        record = json.loads((tmp_path / "cells" / "c00-ok-a"
                             / "error.json").read_text())
        assert record["error_type"] == "CellTimeout"
        # Resume under the same plan: the stall already fired, so the cell
        # completes normally and rows match an unfaulted run.
        reference = repro.run(spec, scale="smoke", out_dir=tmp_path / "ref")
        resumed = repro.run(spec, scale="smoke", out_dir=tmp_path,
                            fault_plan=plan)
        assert dump_json(resumed.rows) == dump_json(reference.rows)
        assert_clean_tree(tmp_path)


# --------------------------------------------------------------------------
class TestFaultCLI:
    def test_fault_plan_flag_and_exit_codes(self, tmp_path, capsys):
        out = str(tmp_path / "c")
        plan = FaultPlan(faults=(
            Fault(kind="torn-write", cell=0, artifact="result"),)).to_json()
        assert cli_main(["run", "fig4", "--scale", "smoke", "--out-dir", out,
                         "--fault-plan", plan, "--format", "none"]) == 3
        assert "resume" in capsys.readouterr().err
        assert cli_main(["run", "fig4", "--scale", "smoke", "--out-dir", out,
                         "--fault-plan", plan, "--format", "none"]) == 0

    def test_lenient_flag_returns_partial_exit_code(self, tmp_path, capsys):
        spec = chaos_spec({"mode": "fail", "name": "a"})
        # the CLI resolves by registry id, so register the chaos spec briefly
        from repro.runs import register_experiment, unregister_experiment
        register_experiment(spec)
        try:
            out = str(tmp_path / "c")
            assert cli_main(["run", "chaos", "--scale", "smoke", "--out-dir",
                             out, "--format", "none"]) == 1
            assert cli_main(["run", "chaos", "--scale", "smoke", "--out-dir",
                             out, "--lenient", "--format", "none"]) == 4
            captured = capsys.readouterr()
            assert "told to fail" in captured.err
        finally:
            unregister_experiment("chaos")

    def test_status_shows_failed_and_quarantined_columns(self, tmp_path, capsys):
        repro.run("table1", scale="smoke", root=tmp_path)
        assert cli_main(["status", "--root", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "failed" in output and "quarantined" in output
