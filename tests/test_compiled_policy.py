"""Bit-parity suite for the compiled inference plan and fused PPO kernels.

Everything in the fast path claims *bit-identical* behavior to the reference
graph path:

* compiled ``act``/``value``/``action_probabilities`` vs graph inference,
  across backbones, dtypes, seeds, and deterministic/sampled modes;
* fused functional kernels (linear, softmax, log-softmax, entropy) vs the
  composed primitive chains, forward and backward;
* the fused graph-free PPO minibatch kernel vs graph-based updates — up to
  whole-training-history equality;
* the in-place Adam/clip rewrite vs the textbook out-of-place formulas.

A guard test asserts the fast paths are actually taken during a default
``PPOTrainer`` run, so a silent fallback cannot rot the speedup.
"""

import os

import numpy as np
import pytest

from repro.autodiff import Adam, Tensor, check_gradients
from repro.autodiff import functional as F
from repro.nn import Categorical
from repro.rl.buffer import RolloutBuffer
from repro.rl.policy import ActorCriticPolicy
from repro.rl.ppo import PPOConfig, PPOUpdater
from repro.rl.trainer import PPOTrainer


WINDOW_SHAPE = (8, 21)
OBS_SIZE = WINDOW_SHAPE[0] * WINDOW_SHAPE[1]
NUM_ACTIONS = 6


def make_policy(backbone="mlp", dtype="float64", seed=0):
    return ActorCriticPolicy(OBS_SIZE, NUM_ACTIONS, hidden_sizes=(32, 24),
                             backbone=backbone, window_shape=WINDOW_SHAPE,
                             rng=np.random.default_rng(seed), dtype=dtype)


class TestCompiledActParity:
    @pytest.mark.parametrize("backbone", ["mlp", "attention"])
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("deterministic", [False, True])
    def test_act_bit_identical(self, backbone, dtype, deterministic):
        for seed in (0, 3):
            policy = make_policy(backbone, dtype, seed)
            assert policy.compiled is not None
            observations = np.random.default_rng(seed + 50).standard_normal(
                (5, OBS_SIZE))
            fast = policy.act(observations, rng=np.random.default_rng(9),
                              deterministic=deterministic)
            reference = policy._act_graph(observations,
                                          rng=np.random.default_rng(9),
                                          deterministic=deterministic)
            assert np.array_equal(fast.actions, reference.actions)
            assert np.array_equal(fast.log_probs, reference.log_probs)
            assert np.array_equal(fast.values, reference.values)

    def test_single_observation_row(self):
        policy = make_policy()
        observation = np.random.default_rng(1).standard_normal(OBS_SIZE)
        fast = policy.act(observation, deterministic=True)
        reference = policy._act_graph(observation, deterministic=True)
        assert np.array_equal(fast.actions, reference.actions)
        assert np.array_equal(fast.values, reference.values)

    @pytest.mark.parametrize("backbone", ["mlp", "attention"])
    def test_value_and_probabilities(self, backbone):
        from repro.autodiff import no_grad

        policy = make_policy(backbone)
        observations = np.random.default_rng(2).standard_normal((4, OBS_SIZE))
        values_fast = policy.value(observations)
        with no_grad():
            _, values_graph = policy.forward(Tensor(policy._prepare(observations)))
        assert np.array_equal(values_fast, values_graph.numpy())
        probabilities = policy.action_probabilities(observations[0])
        with no_grad():
            distribution, _ = policy.distribution(
                Tensor(policy._prepare(observations[0])))
        assert np.array_equal(probabilities, distribution.probs[0])

    def test_rng_stream_consumption_matches(self):
        # Sampling consumes the shared generator identically on both paths,
        # so downstream draws stay aligned.
        policy = make_policy()
        observations = np.random.default_rng(0).standard_normal((3, OBS_SIZE))
        rng_fast, rng_graph = np.random.default_rng(7), np.random.default_rng(7)
        policy.act(observations, rng=rng_fast)
        policy._act_graph(observations, rng=rng_graph)
        assert rng_fast.bit_generator.state == rng_graph.bit_generator.state

    def test_workspace_reuse_does_not_leak_between_calls(self):
        policy = make_policy()
        rng = np.random.default_rng(0)
        first = rng.standard_normal((2, OBS_SIZE))
        second = rng.standard_normal((2, OBS_SIZE))
        out_first = policy.act(first, deterministic=True)
        out_second = policy.act(second, deterministic=True)
        again = policy.act(first, deterministic=True)
        assert np.array_equal(out_first.values, again.values)
        assert not np.array_equal(out_first.values, out_second.values)

    def test_escape_hatch_disables_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_COMPILED", "1")
        policy = make_policy()
        assert policy.compiled is None
        before = policy.compiled_call_count
        policy.act(np.zeros(OBS_SIZE))
        assert policy.compiled_call_count == before


class TestFusedFunctionalParity:
    def _grad_pair(self, build):
        results = []
        for fused in (True, False):
            context = F.composed_ops() if not fused else None
            if context:
                context.__enter__()
            try:
                tensor, loss = build()
                loss.backward()
                results.append((loss.data.copy(), tensor.grad.copy()))
            finally:
                if context:
                    context.__exit__(None, None, None)
        return results

    @pytest.mark.parametrize("shape", [(7, 5), (2, 6, 6)])
    def test_softmax_gradients_bitwise(self, shape):
        data = np.random.default_rng(0).standard_normal(shape) * 3
        weights = np.random.default_rng(1).standard_normal(shape)

        def build():
            tensor = Tensor(data.copy(), requires_grad=True)
            return tensor, (F.softmax(tensor, axis=-1) * Tensor(weights)).sum()

        (loss_fused, grad_fused), (loss_ref, grad_ref) = self._grad_pair(build)
        assert np.array_equal(loss_fused, loss_ref)
        assert np.array_equal(grad_fused, grad_ref)

    def test_log_softmax_and_entropy_gradients_bitwise(self):
        data = np.random.default_rng(2).standard_normal((9, 4)) * 2
        actions = np.random.default_rng(3).integers(0, 4, size=9)
        advantages = np.random.default_rng(4).standard_normal(9)

        def build():
            tensor = Tensor(data.copy(), requires_grad=True)
            distribution = Categorical(tensor)
            log_probs = distribution.log_prob(actions)
            entropy = distribution.entropy().mean()
            loss = -(log_probs * Tensor(advantages)).mean() - 0.01 * entropy
            return tensor, loss

        (loss_fused, grad_fused), (loss_ref, grad_ref) = self._grad_pair(build)
        assert np.array_equal(loss_fused, loss_ref)
        assert np.array_equal(grad_fused, grad_ref)

    def test_fused_linear_gradients_bitwise(self):
        from repro.nn import Linear

        data = np.random.default_rng(5).standard_normal((6, 4))

        def build_with(fused):
            context = F.composed_ops() if not fused else None
            if context:
                context.__enter__()
            try:
                layer = Linear(4, 3, rng=np.random.default_rng(0))
                tensor = Tensor(data.copy(), requires_grad=True)
                loss = (layer(tensor) * layer(tensor)).sum()
                loss.backward()
                return (loss.data.copy(), tensor.grad.copy(),
                        layer.weight.grad.copy(), layer.bias.grad.copy())
            finally:
                if context:
                    context.__exit__(None, None, None)

        for fast, reference in zip(build_with(True), build_with(False)):
            assert np.array_equal(fast, reference)

    def test_gradcheck_fused_log_softmax(self):
        logits = Tensor(np.random.default_rng(6).standard_normal((4, 5)),
                        requires_grad=True)
        targets = np.array([0, 2, 4, 1])
        assert check_gradients(lambda: F.cross_entropy(logits, targets), [logits])

    def test_gradcheck_fused_entropy(self):
        logits = Tensor(np.random.default_rng(7).standard_normal((3, 6)),
                        requires_grad=True)
        assert check_gradients(
            lambda: F.categorical_entropy(logits).mean(), [logits])

    def test_gradcheck_fused_softmax(self):
        logits = Tensor(np.random.default_rng(8).standard_normal((3, 4)),
                        requires_grad=True)
        weights = np.random.default_rng(9).standard_normal((3, 4))
        assert check_gradients(
            lambda: (F.softmax(logits) * Tensor(weights)).sum(), [logits])


class TestFusedUpdateParity:
    def _filled_buffer(self, policy, seed=0):
        rng = np.random.default_rng(seed)
        buffer = RolloutBuffer(horizon=12, num_envs=4, observation_size=OBS_SIZE)
        for _ in range(buffer.horizon):
            buffer.add(rng.standard_normal((4, OBS_SIZE)),
                       rng.integers(0, NUM_ACTIONS, size=4),
                       rng.standard_normal(4),
                       (rng.random(4) < 0.2).astype(float),
                       rng.standard_normal(4),
                       -np.abs(rng.standard_normal(4)))
        buffer.finalize(rng.standard_normal(4), gamma=0.99, lam=0.95)
        return buffer

    @pytest.mark.parametrize("value_clip", [0.2, None])
    def test_update_bit_identical_to_graph(self, value_clip, monkeypatch):
        def run(use_fast):
            if not use_fast:
                monkeypatch.setenv("REPRO_DISABLE_COMPILED", "1")
            else:
                monkeypatch.delenv("REPRO_DISABLE_COMPILED", raising=False)
            config = PPOConfig(minibatch_size=16, update_epochs=2,
                               value_clip=value_clip)
            policy = make_policy()
            updater = PPOUpdater(policy, config, rng=np.random.default_rng(1))
            buffer = self._filled_buffer(policy)
            context = None if use_fast else F.composed_ops()
            if context:
                context.__enter__()
            try:
                metrics = updater.update(buffer)
            finally:
                if context:
                    context.__exit__(None, None, None)
            return metrics, policy.state_dict(), updater.fused_minibatches

        fast_metrics, fast_state, fused_count = run(True)
        ref_metrics, ref_state, ref_count = run(False)
        assert fused_count > 0 and ref_count == 0
        assert fast_metrics == ref_metrics
        for name in fast_state:
            assert np.array_equal(fast_state[name], ref_state[name]), name

    def test_attention_backbone_falls_back_to_graph(self):
        config = PPOConfig(minibatch_size=16, update_epochs=1)
        policy = make_policy("attention")
        updater = PPOUpdater(policy, config, rng=np.random.default_rng(1))
        buffer = self._filled_buffer(policy)
        updater.update(buffer)
        assert updater.fused_minibatches == 0  # graph path, still correct

    def test_training_history_matches_graph_reference(self, monkeypatch):
        """Compiled+fused training reproduces the seed-state history exactly."""
        def train(reference):
            if reference:
                monkeypatch.setenv("REPRO_DISABLE_COMPILED", "1")
            else:
                monkeypatch.delenv("REPRO_DISABLE_COMPILED", raising=False)
            context = F.composed_ops() if reference else None
            if context:
                context.__enter__()
            try:
                trainer = PPOTrainer("guessing/lru-4way", seed=1,
                                     ppo_config=PPOConfig(horizon=32, num_envs=4,
                                                          minibatch_size=32,
                                                          update_epochs=2))
                result = trainer.train(max_updates=3, eval_every=2,
                                       eval_episodes=4)
                return result.history.to_dict(), trainer.policy.state_dict()
            finally:
                if context:
                    context.__exit__(None, None, None)

        fast_history, fast_state = train(False)
        ref_history, ref_state = train(True)
        assert fast_history == ref_history
        for name in fast_state:
            assert np.array_equal(fast_state[name], ref_state[name]), name


class TestGuardFastPathTaken:
    def test_default_trainer_uses_compiled_and_fused_paths(self):
        trainer = PPOTrainer("guessing/lru-4way", seed=0,
                             ppo_config=PPOConfig(horizon=16, num_envs=4,
                                                  minibatch_size=32,
                                                  update_epochs=1))
        trainer.train(max_updates=1, eval_every=5)
        assert trainer.policy.compiled is not None
        assert trainer.policy.compiled_call_count > 0, \
            "compiled inference plan was silently bypassed"
        assert trainer.updater.fused_minibatches > 0, \
            "fused PPO update kernel was silently bypassed"


class TestInPlaceOptimizerParity:
    def _reference_adam_step(self, params, grads, state, lr=1e-3,
                             betas=(0.9, 0.999), eps=1e-8):
        """The pre-rewrite out-of-place Adam update."""
        beta1, beta2 = betas
        state["step"] += 1
        bias1 = 1.0 - beta1 ** state["step"]
        bias2 = 1.0 - beta2 ** state["step"]
        for index, (param, grad) in enumerate(zip(params, grads)):
            state["m"][index] = beta1 * state["m"][index] + (1.0 - beta1) * grad
            state["v"][index] = beta2 * state["v"][index] + (1.0 - beta2) * grad ** 2
            m_hat = state["m"][index] / bias1
            v_hat = state["v"][index] / bias2
            param -= lr * m_hat / (np.sqrt(v_hat) + eps)

    def test_adam_step_bitwise_matches_reference(self):
        rng = np.random.default_rng(0)
        shapes = [(7, 5), (5,), (5, 3), (3,)]
        tensors = [Tensor(rng.standard_normal(shape), requires_grad=True)
                   for shape in shapes]
        reference = [tensor.data.copy() for tensor in tensors]
        optimizer = Adam(tensors, lr=3e-4)
        state = {"step": 0, "m": [np.zeros(s) for s in shapes],
                 "v": [np.zeros(s) for s in shapes]}
        for _ in range(5):
            grads = [rng.standard_normal(shape) for shape in shapes]
            optimizer.zero_grad()
            for tensor, grad in zip(tensors, grads):
                tensor._accumulate(grad)
            optimizer.step()
            self._reference_adam_step(reference, grads, state, lr=3e-4)
        for tensor, expected in zip(tensors, reference):
            assert np.array_equal(tensor.data, expected)

    def test_clip_grad_norm_bitwise_matches_reference(self):
        rng = np.random.default_rng(1)
        tensors = [Tensor(rng.standard_normal((4, 3)), requires_grad=True),
                   Tensor(rng.standard_normal(6), requires_grad=True)]
        grads = [rng.standard_normal((4, 3)) * 5, rng.standard_normal(6) * 5]
        optimizer = Adam(tensors)
        for tensor, grad in zip(tensors, grads):
            tensor._accumulate(grad)
        norm = optimizer.clip_grad_norm(0.5)
        expected_norm = float(np.sqrt(sum(np.sum(g ** 2) for g in grads)))
        assert norm == expected_norm
        scale = 0.5 / expected_norm
        for tensor, grad in zip(tensors, grads):
            assert np.array_equal(tensor.grad, grad * scale)

    def test_grad_buffer_reuse_across_minibatches(self):
        tensor = Tensor(np.zeros(4), requires_grad=True)
        optimizer = Adam([tensor])
        tensor._accumulate(np.ones(4))
        first_grad = tensor.grad
        optimizer.zero_grad()
        assert tensor.grad is None
        tensor._accumulate(np.full(4, 2.0))
        assert tensor.grad is first_grad  # same array object, no reallocation
        assert np.array_equal(tensor.grad, np.full(4, 2.0))


class TestMinibatchScratch:
    def test_minibatches_match_fancy_indexing(self):
        rng_fill = np.random.default_rng(0)
        buffer = RolloutBuffer(horizon=10, num_envs=3, observation_size=4)
        for _ in range(10):
            buffer.add(rng_fill.standard_normal((3, 4)),
                       rng_fill.integers(0, 5, size=3),
                       rng_fill.standard_normal(3),
                       np.zeros(3), rng_fill.standard_normal(3),
                       rng_fill.standard_normal(3))
        buffer.finalize(np.zeros(3), gamma=0.99, lam=0.95)
        total = 30
        observations = buffer.observations.reshape(total, 4)
        advantages = buffer.advantages.reshape(total)
        normalized = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
        order = np.random.default_rng(42).permutation(total)
        for position, batch in enumerate(
                buffer.iter_minibatches(8, rng=np.random.default_rng(42))):
            index = order[position * 8:(position + 1) * 8]
            assert np.array_equal(batch.observations, observations[index])
            assert np.array_equal(batch.advantages, normalized[index])
            # the yielded arrays are views into reusable scratch: they are
            # valid only until the next minibatch is produced
            if position == 0:
                first_copy = batch.observations.copy()
                first_view = batch.observations
        assert not np.array_equal(first_copy, first_view)

    def test_buffer_reset_reuses_storage(self):
        buffer = RolloutBuffer(horizon=4, num_envs=2, observation_size=3)
        storage = buffer.observations
        for _ in range(4):
            buffer.add(np.ones((2, 3)), np.zeros(2, dtype=np.int64),
                       np.zeros(2), np.zeros(2), np.zeros(2), np.zeros(2))
        buffer.finalize(np.zeros(2), gamma=0.99, lam=0.95)
        buffer.reset()
        assert buffer.observations is storage
        assert buffer.position == 0
        assert buffer.advantages is None
        assert not buffer.full
        with pytest.raises(RuntimeError):
            buffer.finalize(np.zeros(2), gamma=0.99, lam=0.95)


class TestFloat32Mode:
    def test_policy_and_optimizer_dtypes(self):
        trainer = PPOTrainer("guessing/lru-4way", seed=0,
                             ppo_config=PPOConfig(dtype="float32", horizon=16,
                                                  num_envs=4, minibatch_size=32,
                                                  update_epochs=1))
        for _, parameter in trainer.policy.named_parameters():
            assert parameter.data.dtype == np.float32
        result = trainer.train(max_updates=2, eval_every=5)
        assert result.updates == 2
        for moment in trainer.updater.optimizer._m:
            assert moment.dtype == np.float32
        for record in result.history.updates:
            assert np.isfinite(record.get("policy_loss", 0.0))

    def test_float32_checkpoint_roundtrip(self, tmp_path):
        config = PPOConfig(dtype="float32", horizon=16, num_envs=4,
                           minibatch_size=32, update_epochs=1)
        trainer = PPOTrainer("guessing/lru-4way", seed=3, ppo_config=config)
        trainer.train(max_updates=1, eval_every=5)
        path = tmp_path / "ckpt.pkl"
        trainer.save_checkpoint(path)
        restored = PPOTrainer.load_checkpoint(path)
        assert restored.config.dtype == "float32"
        assert restored.policy.dtype == "float32"
        state = trainer.policy.state_dict()
        restored_state = restored.policy.state_dict()
        for name in state:
            assert state[name].dtype == np.float32
            assert np.array_equal(state[name], restored_state[name])

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            PPOConfig(dtype="float16")
        with pytest.raises(ValueError):
            make_policy(dtype="int32")


class TestReplayRunner:
    def _trained_policy_env(self):
        import repro

        env = repro.make("guessing/lru-4way", seed=5)
        policy = ActorCriticPolicy(env.observation_size, env.action_space.n,
                                   hidden_sizes=(16,),
                                   window_shape=(env.encoder.window_size,
                                                 env.encoder.step_features),
                                   rng=np.random.default_rng(0))
        return env, policy

    def test_step_into_and_fallback_paths_agree(self, monkeypatch):
        from repro.rl.replay import evaluate_policy

        env, policy = self._trained_policy_env()
        with_into = evaluate_policy(env, policy, episodes=6, seed=11)
        monkeypatch.setattr(type(env), "supports_step_into", False)
        without_into = evaluate_policy(env, policy, episodes=6, seed=11)
        assert with_into == without_into

    def test_extraction_covers_secrets_and_uses_compiled_path(self):
        from repro.rl.replay import extract_attack_sequence

        env, policy = self._trained_policy_env()
        before = policy.compiled_call_count
        extraction = extract_attack_sequence(env, policy, seed=2)
        assert policy.compiled_call_count > before
        expected = set(env.config.victim_addresses)
        if env.config.victim_no_access_enable:
            expected.add(None)
        assert set(extraction.sequences) == expected
