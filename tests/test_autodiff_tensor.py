"""Unit tests for the reverse-mode autodiff tensor."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, no_grad, numerical_gradient


class TestBasicOps:
    def test_add_forward(self):
        result = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        assert np.allclose(result.numpy(), [4.0, 6.0])

    def test_add_scalar(self):
        result = Tensor([1.0, 2.0]) + 1.5
        assert np.allclose(result.numpy(), [2.5, 3.5])

    def test_radd(self):
        result = 1.5 + Tensor([1.0, 2.0])
        assert np.allclose(result.numpy(), [2.5, 3.5])

    def test_sub(self):
        result = Tensor([3.0]) - Tensor([1.0])
        assert np.allclose(result.numpy(), [2.0])

    def test_rsub(self):
        result = 5.0 - Tensor([1.0, 2.0])
        assert np.allclose(result.numpy(), [4.0, 3.0])

    def test_mul(self):
        result = Tensor([2.0, 3.0]) * Tensor([4.0, 5.0])
        assert np.allclose(result.numpy(), [8.0, 15.0])

    def test_div(self):
        result = Tensor([8.0]) / Tensor([2.0])
        assert np.allclose(result.numpy(), [4.0])

    def test_rdiv(self):
        result = 8.0 / Tensor([2.0, 4.0])
        assert np.allclose(result.numpy(), [4.0, 2.0])

    def test_neg(self):
        assert np.allclose((-Tensor([1.0, -2.0])).numpy(), [-1.0, 2.0])

    def test_pow(self):
        assert np.allclose((Tensor([2.0, 3.0]) ** 2).numpy(), [4.0, 9.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** np.array([1.0, 2.0])

    def test_matmul_2d(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        b = Tensor(np.arange(12.0).reshape(3, 4))
        assert np.allclose((a @ b).numpy(), a.numpy() @ b.numpy())

    def test_matmul_vector(self):
        a = Tensor([1.0, 2.0, 3.0])
        b = Tensor([4.0, 5.0, 6.0])
        assert np.isclose((a @ b).item(), 32.0)

    def test_exp_log(self):
        x = Tensor([1.0, 2.0])
        assert np.allclose(x.exp().log().numpy(), x.numpy())

    def test_tanh_range(self):
        result = Tensor([-100.0, 0.0, 100.0]).tanh().numpy()
        assert np.allclose(result, [-1.0, 0.0, 1.0])

    def test_relu(self):
        assert np.allclose(Tensor([-1.0, 0.5]).relu().numpy(), [0.0, 0.5])

    def test_sigmoid(self):
        assert np.isclose(Tensor([0.0]).sigmoid().item(), 0.5)

    def test_abs(self):
        assert np.allclose(Tensor([-2.0, 3.0]).abs().numpy(), [2.0, 3.0])

    def test_clip(self):
        assert np.allclose(Tensor([-2.0, 0.5, 3.0]).clip(0.0, 1.0).numpy(), [0.0, 0.5, 1.0])

    def test_maximum_minimum(self):
        a, b = Tensor([1.0, 5.0]), Tensor([3.0, 2.0])
        assert np.allclose(a.maximum(b).numpy(), [3.0, 5.0])
        assert np.allclose(a.minimum(b).numpy(), [1.0, 2.0])

    def test_sum_mean_max(self):
        x = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert np.isclose(x.sum().item(), 10.0)
        assert np.isclose(x.mean().item(), 2.5)
        assert np.isclose(x.max().item(), 4.0)
        assert np.allclose(x.sum(axis=0).numpy(), [4.0, 6.0])
        assert np.allclose(x.mean(axis=1).numpy(), [1.5, 3.5])

    def test_reshape_transpose(self):
        x = Tensor(np.arange(6.0))
        assert x.reshape(2, 3).shape == (2, 3)
        assert x.reshape((3, 2)).T.shape == (2, 3)

    def test_getitem(self):
        x = Tensor(np.arange(10.0))
        assert np.allclose(x[2:5].numpy(), [2.0, 3.0, 4.0])

    def test_stack_concatenate(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        assert Tensor.stack([a, b]).shape == (2, 2)
        assert Tensor.concatenate([a, b]).shape == (4,)

    def test_constructors(self):
        assert Tensor.zeros((2, 3)).shape == (2, 3)
        assert np.allclose(Tensor.ones((2,)).numpy(), [1.0, 1.0])
        assert Tensor.randn((4, 4), rng=np.random.default_rng(0)).shape == (4, 4)

    def test_len_and_item(self):
        assert len(Tensor([1.0, 2.0, 3.0])) == 3
        assert Tensor([2.5]).item() == 2.5

    def test_item_requires_scalar_for_backward(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0], requires_grad=True).backward()


class TestGradients:
    def test_add_mul_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = Tensor([3.0, 4.0], requires_grad=True)
        loss = ((x * y) + x).sum()
        loss.backward()
        assert np.allclose(x.grad, [4.0, 5.0])
        assert np.allclose(y.grad, [1.0, 2.0])

    def test_broadcast_gradient(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=True)
        loss = (x + b).sum()
        loss.backward()
        assert np.allclose(b.grad, [3.0, 3.0])

    def test_matmul_gradient_matches_numerical(self, rng):
        w = Tensor(rng.standard_normal((3, 2)), requires_grad=True)
        x = Tensor(rng.standard_normal((4, 3)))

        def loss():
            return ((x @ w) ** 2).sum()

        assert check_gradients(loss, [w])

    def test_elementwise_gradients_match_numerical(self, rng):
        x = Tensor(rng.standard_normal(5) * 0.5 + 1.5, requires_grad=True)

        def loss():
            return (x.log() + x.exp() * x.tanh() + x.sigmoid()).sum()

        assert check_gradients(loss, [x])

    def test_reduction_gradients_match_numerical(self, rng):
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)

        def loss():
            return (x.mean(axis=0) * x.sum(axis=0)).sum() + x.max()

        assert check_gradients(loss, [x], tolerance=1e-3)

    def test_division_gradient(self, rng):
        x = Tensor(rng.standard_normal(4) + 3.0, requires_grad=True)
        y = Tensor(rng.standard_normal(4) + 3.0, requires_grad=True)

        def loss():
            return (x / y).sum()

        assert check_gradients(loss, [x, y])

    def test_getitem_gradient(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        loss = (x[1:4] * 2.0).sum()
        loss.backward()
        assert np.allclose(x.grad, [0.0, 2.0, 2.0, 2.0, 0.0])

    def test_gradient_accumulates_across_uses(self):
        x = Tensor([2.0], requires_grad=True)
        loss = (x * x + x).sum()
        loss.backward()
        assert np.allclose(x.grad, [5.0])

    def test_numerical_gradient_helper(self):
        x = Tensor([2.0], requires_grad=True)
        numeric = numerical_gradient(lambda: (x ** 3).sum(), x)
        assert np.allclose(numeric, [12.0], atol=1e-4)

    def test_detach_blocks_gradient(self):
        x = Tensor([1.0], requires_grad=True)
        loss = (x.detach() * 3.0).sum()
        loss.backward()
        assert x.grad is None

    def test_no_grad_context(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._backward is None

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_clip_gradient_masks_out_of_range(self):
        x = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        x.clip(0.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])

    def test_stack_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        Tensor.stack([a, b]).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])

    def test_concatenate_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (Tensor.concatenate([a, b]) * Tensor([1.0, 2.0, 3.0])).sum().backward()
        assert np.allclose(a.grad, [1.0, 2.0])
        assert np.allclose(b.grad, [3.0])
