"""Tests for the attack library: sequences, textbook attacks, channels, Spectre."""

import numpy as np
import pytest

from repro.attacks import (
    AttackCategory,
    AttackSequence,
    LRUAddressBasedChannel,
    SpectreV1Victim,
    StealthyStreamlineChannel,
    StreamlineChannel,
    TextbookPrimeProbeAttacker,
    distinguishing_accuracy,
    evaluate_action_sequence,
    evict_reload_sequence,
    flush_reload_sequence,
    lru_address_based_sequence,
    lru_set_based_sequence,
    prime_probe_sequence,
    run_scripted_attacker,
    run_spectre_demo,
    textbook_attack_for_config,
)
from repro.attacks.stealthy_streamline import stealthy_streamline_sequence
from repro.cache.config import CacheConfig
from repro.env.config import EnvConfig
from repro.env.covert_env import MultiGuessCovertEnv
from repro.env.guessing_game import CacheGuessingGameEnv


class TestAttackSequence:
    def test_from_labels_roundtrip(self):
        sequence = AttackSequence.from_labels(["3", "f2", "v", "g0"])
        assert sequence.render() == "3 -> f2 -> v -> g0"
        assert sequence.uses_flush
        assert sequence.trigger_count == 1
        assert sequence.accessed_addresses == [3]

    def test_guess_empty_label(self):
        sequence = AttackSequence.from_labels(["v", "gE"])
        assert str(sequence.actions[-1]) == "gE"

    def test_to_indices(self, prime_probe_env_config):
        env = CacheGuessingGameEnv(prime_probe_env_config)
        sequence = prime_probe_sequence(prime_probe_env_config)
        indices = sequence.to_indices(env.actions)
        assert len(indices) == len(sequence)
        assert all(0 <= index < env.action_space.n for index in indices)


class TestTextbookAttacks:
    def test_prime_probe_accuracy(self, prime_probe_env_config):
        env = CacheGuessingGameEnv(prime_probe_env_config)
        sequence = prime_probe_sequence(prime_probe_env_config)
        accuracy, _ = evaluate_action_sequence(env, sequence.to_indices(env.actions), trials=2)
        assert accuracy == 1.0

    def test_flush_reload_accuracy(self):
        config = EnvConfig(cache=CacheConfig.direct_mapped(4), attacker_addr_s=0,
                           attacker_addr_e=3, victim_addr_s=0, victim_addr_e=3,
                           victim_no_access_enable=False, flush_enable=True,
                           window_size=24, warmup_accesses=0)
        env = CacheGuessingGameEnv(config)
        sequence = flush_reload_sequence(config)
        accuracy, _ = evaluate_action_sequence(env, sequence.to_indices(env.actions), trials=2)
        assert accuracy == 1.0

    def test_evict_reload_accuracy(self):
        config = EnvConfig(cache=CacheConfig.direct_mapped(4), attacker_addr_s=0,
                           attacker_addr_e=7, victim_addr_s=0, victim_addr_e=3,
                           victim_no_access_enable=False, window_size=32, warmup_accesses=0)
        env = CacheGuessingGameEnv(config)
        sequence = evict_reload_sequence(config)
        accuracy, _ = evaluate_action_sequence(env, sequence.to_indices(env.actions), trials=2)
        assert accuracy == 1.0

    def test_lru_address_based_accuracy(self):
        config = EnvConfig(cache=CacheConfig.fully_associative(4), attacker_addr_s=0,
                           attacker_addr_e=4, victim_addr_s=0, victim_addr_e=0,
                           victim_no_access_enable=True, window_size=16, warmup_accesses=0)
        env = CacheGuessingGameEnv(config)
        sequence = lru_address_based_sequence(config)
        accuracy, _ = evaluate_action_sequence(env, sequence.to_indices(env.actions), trials=2)
        assert accuracy == 1.0

    def test_lru_set_based_sequence_structure(self):
        config = EnvConfig(cache=CacheConfig.fully_associative(4), attacker_addr_s=1,
                           attacker_addr_e=5, victim_addr_s=0, victim_addr_e=0,
                           victim_no_access_enable=True, warmup_accesses=0)
        sequence = lru_set_based_sequence(config)
        assert sequence.category is AttackCategory.LRU_STATE
        assert sequence.trigger_count == 1

    def test_flush_reload_requires_sharing_and_flush(self, prime_probe_env_config):
        with pytest.raises(ValueError):
            flush_reload_sequence(prime_probe_env_config)

    def test_evict_reload_requires_extra_addresses(self):
        config = EnvConfig(cache=CacheConfig.direct_mapped(4), attacker_addr_s=0,
                           attacker_addr_e=3, victim_addr_s=0, victim_addr_e=3,
                           victim_no_access_enable=False, warmup_accesses=0)
        with pytest.raises(ValueError):
            evict_reload_sequence(config)

    def test_textbook_selector_prefers_flush_reload(self):
        config = EnvConfig(cache=CacheConfig.direct_mapped(4), attacker_addr_s=0,
                           attacker_addr_e=3, victim_addr_s=0, victim_addr_e=3,
                           victim_no_access_enable=False, flush_enable=True,
                           warmup_accesses=0)
        assert textbook_attack_for_config(config).category is AttackCategory.FLUSH_RELOAD

    def test_textbook_selector_falls_back_to_prime_probe(self, prime_probe_env_config):
        assert (textbook_attack_for_config(prime_probe_env_config).category
                is AttackCategory.PRIME_PROBE)

    def test_stealthy_streamline_sequence_structure(self):
        config = EnvConfig(cache=CacheConfig.fully_associative(4), attacker_addr_s=0,
                           attacker_addr_e=5, victim_addr_s=0, victim_addr_e=3,
                           victim_no_access_enable=False, warmup_accesses=0)
        sequence = stealthy_streamline_sequence(config)
        assert sequence.category is AttackCategory.STEALTHY_STREAMLINE
        assert sequence.trigger_count == 1


class TestEvaluation:
    def test_distinguishing_accuracy_perfect(self):
        signatures = {0: [(True,)], 1: [(False,)]}
        assert distinguishing_accuracy(signatures) == 1.0

    def test_distinguishing_accuracy_chance(self):
        signatures = {0: [(True,)], 1: [(True,)]}
        assert distinguishing_accuracy(signatures) == 0.5

    def test_distinguishing_accuracy_empty(self):
        assert distinguishing_accuracy({}) == 0.0

    def test_empty_sequence_gives_chance_accuracy(self, prime_probe_env_config):
        env = CacheGuessingGameEnv(prime_probe_env_config)
        accuracy, steps = evaluate_action_sequence(env, [], trials=1)
        assert accuracy == pytest.approx(1.0 / 4.0)
        assert steps == 0


class TestCovertChannels:
    @pytest.mark.parametrize("channel_cls", [LRUAddressBasedChannel, StealthyStreamlineChannel,
                                             StreamlineChannel])
    def test_error_free_on_lru_simulator(self, channel_cls):
        channel = channel_cls(num_ways=8, seed=0)
        message = channel.random_message(256)
        result = channel.transmit(message)
        assert result.error_rate == 0.0
        assert result.received_bits == message

    def test_lru_address_based_is_stealthy(self):
        result = LRUAddressBasedChannel(num_ways=8).transmit([1, 0, 1, 1, 0, 0] * 10)
        assert result.stealthy
        assert result.sender_misses == 0

    def test_stealthy_streamline_is_stealthy(self):
        result = StealthyStreamlineChannel(num_ways=8).transmit([1, 0] * 64)
        assert result.stealthy

    def test_streamline_is_not_stealthy(self):
        result = StreamlineChannel(num_ways=8).transmit([1, 0] * 64)
        assert not result.stealthy
        assert result.sender_misses > 0

    def test_stealthy_streamline_has_higher_rate_than_lru(self):
        message = [1, 0, 1, 1] * 64
        lru = LRUAddressBasedChannel(num_ways=8).transmit(message)
        stealthy = StealthyStreamlineChannel(num_ways=8).transmit(message)
        assert stealthy.bits_per_access > lru.bits_per_access
        assert stealthy.measured_fraction < 0.5

    def test_advantage_grows_with_associativity(self):
        message = [0, 1] * 64
        ratios = []
        for ways in (8, 12):
            lru = LRUAddressBasedChannel(num_ways=ways).transmit(message)
            stealthy = StealthyStreamlineChannel(num_ways=ways).transmit(message)
            ratios.append(stealthy.bits_per_access / lru.bits_per_access)
        assert ratios[1] > ratios[0]

    def test_stealthy_streamline_on_plru_mostly_correct(self):
        channel = StealthyStreamlineChannel(num_ways=8, rep_policy="plru", seed=0)
        message = channel.random_message(256)
        result = channel.transmit(message)
        assert result.error_rate < 0.3

    def test_stealthy_streamline_requires_eight_ways(self):
        with pytest.raises(ValueError):
            StealthyStreamlineChannel(num_ways=4)

    def test_transmission_result_properties(self):
        channel = LRUAddressBasedChannel(num_ways=8)
        result = channel.transmit([1, 0, 1])
        assert result.symbols == 3
        assert len(result.received_bits) == 3
        assert 0.0 <= result.measured_fraction <= 1.0

    def test_odd_length_messages_are_padded_internally(self):
        channel = StealthyStreamlineChannel(num_ways=8)
        result = channel.transmit([1, 0, 1])
        assert len(result.received_bits) == 3
        assert result.error_rate == 0.0


class TestScriptedAttacker:
    def _covert_env(self, num_sets=4, episode_length=80):
        config = EnvConfig(cache=CacheConfig.direct_mapped(num_sets),
                           attacker_addr_s=num_sets, attacker_addr_e=2 * num_sets - 1,
                           victim_addr_s=0, victim_addr_e=num_sets - 1,
                           victim_no_access_enable=False, window_size=4 * num_sets,
                           warmup_accesses=0, seed=0)
        return MultiGuessCovertEnv(config, episode_length=episode_length)

    def test_textbook_attacker_is_accurate(self):
        env = self._covert_env()
        stats = run_scripted_attacker(env, TextbookPrimeProbeAttacker(env), episodes=2)
        assert stats["guess_accuracy"] > 0.95
        assert stats["bit_rate"] > 0.05

    def test_textbook_attacker_has_high_autocorrelation(self):
        env = self._covert_env()
        stats = run_scripted_attacker(env, TextbookPrimeProbeAttacker(env), episodes=2)
        assert stats["max_autocorrelation"] > 0.75

    def test_traces_contain_both_domains(self):
        env = self._covert_env(num_sets=2, episode_length=40)
        stats = run_scripted_attacker(env, TextbookPrimeProbeAttacker(env), episodes=1)
        domains = {domain for trace in stats["traces"] for domain, _ in trace}
        assert domains == {"attacker", "victim"}


class TestSpectre:
    def test_speculative_read_leaks_secret(self):
        victim = SpectreV1Victim(secret=b"AB", bounds=4)
        assert victim.speculative_read(4) == ord("A")
        assert victim.speculative_read(5) == ord("B")
        assert victim.architectural_read(4) == 0
        assert victim.speculative_read(1) == victim.architectural_read(1)
        assert victim.speculative_read(100) is None

    def test_demo_recovers_secret_through_channel(self):
        outcome = run_spectre_demo(secret=b"CAT")
        assert outcome["recovered"] == b"CAT"
        assert outcome["byte_accuracy"] == 1.0
        assert outcome["stealthy"]
