"""Tests for the experiment drivers (smoke scale) and shared infrastructure."""

import math

import numpy as np
import pytest

from repro.experiments import BENCH, PAPER, SMOKE, ExperimentScale
from repro.experiments.common import average_over_runs, format_table, get_scale
from repro.experiments import (
    fig4,
    search_comparison,
    table1_known_attacks,
    table4,
    table10_fig5,
)
from repro.experiments.table4 import table4_configs
from repro.experiments.table5 import make_env_factory as table5_factory
from repro.experiments.table6 import make_env_factory as table6_factory
from repro.experiments.table7 import make_env_factory as table7_factory
from repro.experiments.table8_fig3 import covert_env_config, make_covert_env_factory
from repro.experiments.table3 import make_env_factory as table3_factory
from repro.hardware.machines import get_machine


class TestScales:
    def test_presets_are_registered(self):
        assert get_scale("smoke") is SMOKE
        assert get_scale("bench") is BENCH
        assert get_scale("paper") is PAPER
        assert get_scale(SMOKE) is SMOKE

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_ppo_config_from_scale(self):
        config = BENCH.ppo_config(horizon=32)
        assert config.horizon == 32
        assert config.num_envs == BENCH.num_envs

    def test_with_overrides(self):
        scale = SMOKE.with_overrides(max_updates=3)
        assert scale.max_updates == 3
        assert scale.name == "smoke"

    def test_average_over_runs(self):
        assert average_over_runs([1.0, 3.0]) == 2.0
        assert average_over_runs([None, 4.0]) == 4.0
        assert math.isnan(average_over_runs([]))

    def test_format_table(self):
        text = format_table([{"a": 1, "b": 0.5}], ["a", "b"], title="T")
        assert "T" in text and "0.500" in text


class TestFastDrivers:
    def test_table1_all_attacks_reach_full_accuracy(self):
        rows = table1_known_attacks.run()
        assert len(rows) == 4
        assert all(row["accuracy"] == 1.0 for row in rows)
        assert table1_known_attacks.format_results(rows)

    def test_fig4_shape(self):
        rows = fig4.run(num_ways=8, message_bits=128)
        by_name = {row["channel"]: row for row in rows}
        assert by_name["stealthy_streamline"]["bypasses_miss_detection"]
        assert not by_name["streamline"]["bypasses_miss_detection"]
        assert (by_name["stealthy_streamline"]["bits_per_access"]
                > by_name["lru_address_based"]["bits_per_access"])
        assert fig4.format_results(rows)

    def test_fig4_walkthrough_decodes_all_symbols(self):
        rows = fig4.cache_state_walkthrough(num_ways=8)
        assert len(rows) == 4
        assert all(row["correct"] for row in rows)

    def test_table10_matches_paper_shape(self):
        rows = table10_fig5.run(message_bits=1024)
        assert len(rows) == 4
        for row in rows:
            assert row["ss_bit_rate_mbps"] > row["lru_bit_rate_mbps"]
        eight_way = [row for row in rows if "8way" in row["l1d_config"]]
        twelve_way = [row for row in rows if "12way" in row["l1d_config"]]
        assert max(r["improvement"] for r in twelve_way) > max(r["improvement"] for r in eight_way)
        assert table10_fig5.format_results(rows)

    def test_figure5_curves_structure(self):
        curves = table10_fig5.figure5_curves(message_bits=512, trials=2)
        assert len(curves) == 4
        for machine_curves in curves.values():
            assert set(machine_curves) == {"lru_address_based", "stealthy_streamline"}
            for points in machine_curves.values():
                assert all("bit_rate_mbps" in point and "error_rate_mean" in point
                           for point in points)

    def test_search_comparison(self):
        rows = search_comparison.run("smoke")
        analytical = [row for row in rows if row["kind"] == "analytical"]
        assert analytical[0]["brute_force_steps"] < analytical[-1]["brute_force_steps"]
        assert search_comparison.format_results(rows)

    def test_table4_textbook_feasibility_for_all_configs(self):
        rows = table4.run("smoke")
        assert len(rows) == 17
        # Every configuration leaks information to the textbook attack (well
        # above chance); prefetchers and the two-level hierarchy degrade the
        # for-loop attack, which is exactly why the paper's RL agent finds
        # adapted sequences for those configurations.
        assert all(row["textbook_accuracy"] >= 0.5 for row in rows)
        plain = [row for row in rows
                 if "prefetcher" not in row["description"] and "2-level" not in row["description"]]
        assert all(row["textbook_accuracy"] > 0.9 for row in plain)
        assert not any(row["rl_trained"] for row in rows)
        assert table4.format_results(rows)

    def test_table4_config_catalogue(self):
        configs = table4_configs()
        assert [config.number for config in configs] == list(range(1, 18))
        hierarchy_configs = [config for config in configs if config.build().hierarchy]
        assert len(hierarchy_configs) == 2


class TestEnvFactories:
    def test_table5_factory_builds_policy_specific_envs(self):
        env = table5_factory("rrip")(0)
        assert env.config.cache.rep_policy == "rrip"
        assert env.config.victim_no_access_enable

    def test_table6_factory_sets_step_reward(self):
        env = table6_factory(-0.005)(0)
        assert env.config.rewards.step_reward == -0.005
        assert env.config.cache.rep_policy == "random"

    def test_table7_factory_locks_victim_line(self):
        env = table7_factory(pl_cache=True)(0)
        env.reset(secret=0)
        backend_cache = env.backend.cache
        assert backend_cache.contains(0)
        way = backend_cache.lookup(0)
        assert backend_cache.sets[0][way].locked

    def test_table7_baseline_has_no_lock(self):
        env = table7_factory(pl_cache=False)(0)
        env.reset(secret=0)
        assert not env.backend.cache.config.lockable

    def test_table3_factory_uses_blackbox_backend(self):
        env = table3_factory(get_machine("Core i7-6700:L2"), attacker_addresses=5)(0)
        assert env.action_space.n == 5 + 1 + 2
        assert env.machine.name == "Core i7-6700"

    def test_covert_env_factory(self):
        env = make_covert_env_factory(2, 32)(0)
        assert env.episode_length == 32
        config = covert_env_config(2, 32)
        assert config.victim_addresses == [0, 1]
        assert config.attacker_addresses == [2, 3]


class TestSmokeScaleRLDrivers:
    """At smoke scale these just exercise the full code path, not convergence."""

    def test_table5_smoke(self):
        from repro.experiments import table5
        rows = table5.run(SMOKE, policies=("lru",))
        assert len(rows) == 1
        assert rows[0]["replacement_policy"] == "lru"
        assert rows[0]["epochs_to_converge"] > 0
        assert table5.format_results(rows)

    def test_table6_smoke(self):
        from repro.experiments import table6
        rows = table6.run(SMOKE, step_rewards=(-0.01,))
        assert len(rows) == 1
        assert 0.0 <= rows[0]["end_accuracy"] <= 1.0
        assert table6.format_results(rows)

    def test_table7_smoke(self):
        from repro.experiments import table7
        rows = table7.run(SMOKE, num_ways=2)
        assert {row["cache"] for row in rows} == {"PL Cache", "Baseline"}
        assert table7.format_results(rows)
