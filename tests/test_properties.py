"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import hamming_distance
from repro.attacks.lru_attacks import LRUAddressBasedChannel
from repro.attacks.stealthy_streamline import StealthyStreamlineChannel
from repro.autodiff import Tensor, functional as F
from repro.cache.cache import Cache
from repro.cache.config import CacheConfig
from repro.cache.policies import LRUPolicy, PLRUPolicy, RRIPPolicy
from repro.detection.autocorrelation import autocorrelation, autocorrelogram
from repro.env.actions import ActionSpace
from repro.env.config import EnvConfig
from repro.env.guessing_game import CacheGuessingGameEnv
from repro.env.observation import LatencyObservation, ObservationEncoder

# ---------------------------------------------------------------------- cache

addresses = st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=60)


@given(addresses)
@settings(max_examples=40, deadline=None)
def test_cache_contents_subset_of_accessed(trace):
    cache = Cache(CacheConfig.set_associative(4, 2))
    for address in trace:
        cache.access(address)
    assert set(cache.contents()) <= set(trace)
    assert len(cache.contents()) <= cache.config.num_blocks


@given(addresses)
@settings(max_examples=40, deadline=None)
def test_second_access_always_hits_immediately(trace):
    cache = Cache(CacheConfig.fully_associative(4))
    for address in trace:
        cache.access(address)
        assert cache.access(address).hit


@given(addresses)
@settings(max_examples=40, deadline=None)
def test_most_recently_used_line_never_evicted_under_lru(trace):
    cache = Cache(CacheConfig.fully_associative(4, rep_policy="lru"))
    for address in trace:
        result = cache.access(address)
        assert result.evicted_address != address
        assert cache.contains(address)


@given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=40),
       st.sampled_from(["lru", "plru", "rrip", "mru"]))
@settings(max_examples=40, deadline=None)
def test_policy_victims_always_in_range(touches, policy_name):
    policies = {"lru": LRUPolicy, "plru": PLRUPolicy, "rrip": RRIPPolicy}
    if policy_name == "mru":
        from repro.cache.policies import MRUPolicy as policy_cls
    else:
        policy_cls = policies[policy_name]
    policy = policy_cls(8)
    for way in touches:
        policy.on_fill(way)
        victim = policy.victim([True] * 8)
        assert 0 <= victim < 8


@given(addresses)
@settings(max_examples=30, deadline=None)
def test_flush_then_access_always_misses(trace):
    cache = Cache(CacheConfig.set_associative(2, 2))
    for address in trace:
        cache.access(address)
        cache.flush(address)
        assert not cache.access(address).hit


# ------------------------------------------------------------------- autodiff

small_arrays = st.lists(st.floats(min_value=-5.0, max_value=5.0,
                                  allow_nan=False, allow_infinity=False),
                        min_size=2, max_size=8)


@given(small_arrays)
@settings(max_examples=50, deadline=None)
def test_softmax_is_a_probability_distribution(values):
    probabilities = F.softmax(Tensor([values])).numpy()
    assert np.all(probabilities >= 0.0)
    assert np.isclose(probabilities.sum(), 1.0)


@given(small_arrays)
@settings(max_examples=50, deadline=None)
def test_entropy_bounded_by_log_n(values):
    entropy = F.categorical_entropy(Tensor([values])).numpy()[0]
    assert -1e-9 <= entropy <= np.log(len(values)) + 1e-9


@given(small_arrays, small_arrays)
@settings(max_examples=50, deadline=None)
def test_addition_gradient_is_ones(a, b):
    size = min(len(a), len(b))
    x = Tensor(a[:size], requires_grad=True)
    y = Tensor(b[:size], requires_grad=True)
    (x + y).sum().backward()
    assert np.allclose(x.grad, 1.0)
    assert np.allclose(y.grad, 1.0)


# ------------------------------------------------------------------ detection

bit_trains = st.lists(st.integers(min_value=0, max_value=1), min_size=0, max_size=80)


@given(bit_trains, st.integers(min_value=1, max_value=20))
@settings(max_examples=60, deadline=None)
def test_autocorrelation_is_bounded(train, lag):
    value = autocorrelation(train, lag)
    n = len(train)
    bound = (n / max(n - lag, 1)) + 1e-9 if n else 1.0
    assert abs(value) <= bound


@given(bit_trains)
@settings(max_examples=40, deadline=None)
def test_autocorrelogram_starts_at_one_for_nonempty(train):
    coefficients = autocorrelogram(train, max_lag=min(5, max(len(train) - 1, 0)))
    if train:
        assert coefficients[0] == 1.0


# ----------------------------------------------------------------------- env

env_configs = st.tuples(st.integers(min_value=2, max_value=4),
                        st.booleans(), st.booleans())


@given(env_configs, st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=20))
@settings(max_examples=30, deadline=None)
def test_env_steps_never_crash_and_rewards_bounded(parameters, action_stream):
    ways, flush_enable, no_access = parameters
    config = EnvConfig(cache=CacheConfig.fully_associative(ways),
                       attacker_addr_s=0, attacker_addr_e=ways,
                       victim_addr_s=0, victim_addr_e=0,
                       flush_enable=flush_enable, victim_no_access_enable=no_access,
                       window_size=8, max_steps=8, warmup_accesses=0, seed=0)
    env = CacheGuessingGameEnv(config)
    env.reset()
    rewards = config.rewards
    low = (rewards.wrong_guess_reward + rewards.length_violation_reward
           + rewards.step_reward - 1.0)
    high = rewards.correct_guess_reward + 1.0
    for raw_action in action_stream:
        result = env.step(raw_action % env.action_space.n)
        assert low <= result.reward <= high
        assert env.observation_space.contains(result.observation)
        if result.done:
            env.reset()


@given(st.integers(min_value=2, max_value=6), st.booleans(), st.booleans())
@settings(max_examples=30, deadline=None)
def test_action_space_encode_decode_roundtrip(span, flush_enable, no_access):
    config = EnvConfig(cache=CacheConfig.fully_associative(2),
                       attacker_addr_s=0, attacker_addr_e=span,
                       victim_addr_s=0, victim_addr_e=1,
                       flush_enable=flush_enable, victim_no_access_enable=no_access,
                       warmup_accesses=0)
    space = ActionSpace(config)
    for index in range(len(space)):
        assert space.encode(space.decode(index)) == index


@given(st.integers(min_value=1, max_value=8),
       st.lists(st.tuples(st.sampled_from(list(LatencyObservation)),
                          st.integers(min_value=0, max_value=4),
                          st.booleans()),
                min_size=0, max_size=20))
@settings(max_examples=40, deadline=None)
def test_observation_encoder_shape_and_bounds(window, records):
    encoder = ObservationEncoder(window_size=window, num_actions=5, max_steps=10)
    for step, (latency, action, triggered) in enumerate(records, start=1):
        encoder.record(latency, action, step, triggered)
    flat = encoder.encode_flat()
    assert flat.shape == (encoder.flat_size,)
    assert np.all(flat >= 0.0) and np.all(flat <= 1.0)
    assert len(encoder.history) <= window


# ------------------------------------------------------------------- channels

messages = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=96)


@given(messages)
@settings(max_examples=20, deadline=None)
def test_stealthy_streamline_transmits_any_message_without_error(message):
    channel = StealthyStreamlineChannel(num_ways=8, seed=0)
    result = channel.transmit(message)
    assert result.received_bits == [bit & 1 for bit in message]
    assert result.sender_misses == 0


@given(messages)
@settings(max_examples=20, deadline=None)
def test_lru_address_channel_transmits_any_message_without_error(message):
    channel = LRUAddressBasedChannel(num_ways=8, seed=0)
    result = channel.transmit(message)
    assert result.received_bits == [bit & 1 for bit in message]
    assert result.sender_misses == 0


@given(messages, messages)
@settings(max_examples=50, deadline=None)
def test_hamming_distance_properties(a, b):
    size = min(len(a), len(b))
    a, b = a[:size], b[:size]
    assert hamming_distance(a, b) == hamming_distance(b, a)
    assert hamming_distance(a, a) == 0
    assert 0 <= hamming_distance(a, b) <= size
