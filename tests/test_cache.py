"""Tests for the cache model, mappings, prefetchers, PL cache, hierarchy, events."""

import numpy as np
import pytest

from repro.cache import (
    Cache,
    CacheConfig,
    ModuloMapping,
    NextLinePrefetcher,
    PLCache,
    RandomPermutationMapping,
    StreamPrefetcher,
    TwoLevelCache,
    make_mapping,
    make_prefetcher,
)
from repro.cache.block import CacheBlock
from repro.cache.events import ConflictEvent, EventLog


class TestCacheConfig:
    def test_num_blocks(self):
        assert CacheConfig(num_sets=4, num_ways=2).num_blocks == 8

    def test_constructors(self):
        assert CacheConfig.direct_mapped(8).is_direct_mapped
        assert CacheConfig.fully_associative(4).is_fully_associative
        config = CacheConfig.set_associative(4, 2)
        assert (config.num_sets, config.num_ways) == (4, 2)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(num_sets=0)
        with pytest.raises(ValueError):
            CacheConfig(num_ways=0)
        with pytest.raises(ValueError):
            CacheConfig(hit_latency=50, miss_latency=40)


class TestCacheBlock:
    def test_fill_and_match(self):
        block = CacheBlock()
        block.fill(tag=3, address=12, domain="victim")
        assert block.matches(3)
        assert not block.matches(4)
        assert block.domain == "victim"

    def test_invalidate(self):
        block = CacheBlock()
        block.fill(tag=1, address=1, domain=None)
        block.invalidate()
        assert not block.valid
        assert not block.matches(1)


class TestCacheBasics:
    def test_first_access_misses_second_hits(self, fa4_lru_config):
        cache = Cache(fa4_lru_config)
        assert not cache.access(0).hit
        assert cache.access(0).hit

    def test_latencies(self, fa4_lru_config):
        cache = Cache(fa4_lru_config)
        miss = cache.access(0)
        hit = cache.access(0)
        assert miss.latency == fa4_lru_config.miss_latency
        assert hit.latency == fa4_lru_config.hit_latency

    def test_eviction_on_capacity(self, fa4_lru_config):
        cache = Cache(fa4_lru_config)
        for address in range(4):
            cache.access(address)
        result = cache.access(4)
        assert result.evicted_address == 0
        assert not cache.contains(0)
        assert cache.contains(4)

    def test_contents_sorted(self, fa4_lru_config):
        cache = Cache(fa4_lru_config)
        for address in (3, 1, 2):
            cache.access(address)
        assert cache.contents() == [1, 2, 3]

    def test_direct_mapped_conflict(self, dm4_config):
        cache = Cache(dm4_config)
        cache.access(0)
        result = cache.access(4)  # same set as 0
        assert result.evicted_address == 0

    def test_flush(self, fa4_lru_config):
        cache = Cache(fa4_lru_config)
        cache.access(2)
        assert cache.flush(2)
        assert not cache.contains(2)
        assert not cache.flush(2)

    def test_lookup_has_no_side_effects(self, fa4_lru_config):
        cache = Cache(fa4_lru_config)
        cache.access(1)
        accesses_before = cache.access_count
        assert cache.lookup(1) is not None
        assert cache.lookup(9) is None
        assert cache.access_count == accesses_before

    def test_hit_rate(self, fa4_lru_config):
        cache = Cache(fa4_lru_config)
        cache.access(0)
        cache.access(0)
        cache.access(0)
        assert np.isclose(cache.hit_rate, 2.0 / 3.0)

    def test_reset_clears_everything(self, fa4_lru_config):
        cache = Cache(fa4_lru_config)
        cache.access(0, domain="attacker")
        cache.reset()
        assert cache.contents() == []
        assert cache.access_count == 0
        assert cache.events.total_accesses == 0

    def test_warm_up(self, fa4_lru_config):
        cache = Cache(fa4_lru_config)
        cache.warm_up([0, 1, 2])
        assert cache.contents() == [0, 1, 2]

    def test_negative_address_rejected(self, fa4_lru_config):
        with pytest.raises(ValueError):
            Cache(fa4_lru_config).access(-1)

    def test_write_sets_dirty(self, fa4_lru_config):
        cache = Cache(fa4_lru_config)
        cache.access(0, write=True)
        way = cache.lookup(0)
        assert cache.sets[0][way].dirty

    def test_lock_requires_lockable_config(self, fa4_lru_config):
        with pytest.raises(RuntimeError):
            Cache(fa4_lru_config).lock(0)

    def test_replacement_state_snapshot(self, fa4_lru_config):
        cache = Cache(fa4_lru_config)
        cache.access(0)
        assert len(cache.replacement_state(0)) == 4


class TestMappings:
    def test_modulo(self):
        mapping = ModuloMapping(4)
        assert mapping.set_index(5) == 1
        assert mapping.tag(5) == 1
        assert mapping.locate(5) == (1, 1)

    def test_random_permutation_is_deterministic(self):
        a = RandomPermutationMapping(8, seed=3)
        b = RandomPermutationMapping(8, seed=3)
        assert [a.set_index(i) for i in range(32)] == [b.set_index(i) for i in range(32)]

    def test_random_permutation_in_range(self):
        mapping = RandomPermutationMapping(8, seed=1)
        assert all(0 <= mapping.set_index(i) < 8 for i in range(100))

    def test_different_seeds_differ(self):
        a = RandomPermutationMapping(16, seed=0)
        b = RandomPermutationMapping(16, seed=1)
        assert [a.set_index(i) for i in range(64)] != [b.set_index(i) for i in range(64)]

    def test_factory(self):
        assert isinstance(make_mapping("modulo", 4), ModuloMapping)
        assert isinstance(make_mapping("random", 4, seed=2), RandomPermutationMapping)
        with pytest.raises(ValueError):
            make_mapping("hash", 4)

    def test_cache_with_random_mapping_still_functions(self):
        config = CacheConfig(num_sets=4, num_ways=2, mapping="random", mapping_seed=5)
        cache = Cache(config)
        cache.access(0)
        assert cache.access(0).hit


class TestPrefetchers:
    def test_nextline_prefetches_next_address(self):
        prefetcher = NextLinePrefetcher()
        assert prefetcher.prefetch_targets(5, hit=False) == [6]

    def test_nextline_wrap(self):
        prefetcher = NextLinePrefetcher(wrap=8)
        assert prefetcher.prefetch_targets(7, hit=True) == [0]

    def test_stream_requires_constant_stride(self):
        prefetcher = StreamPrefetcher(trigger=3)
        assert prefetcher.prefetch_targets(0, True) == []
        assert prefetcher.prefetch_targets(2, True) == []
        assert prefetcher.prefetch_targets(4, True) == [6]

    def test_stream_resets_on_stride_change(self):
        prefetcher = StreamPrefetcher(trigger=3)
        prefetcher.prefetch_targets(0, True)
        prefetcher.prefetch_targets(2, True)
        assert prefetcher.prefetch_targets(7, True) == []

    def test_cache_with_nextline_prefetcher_installs_neighbor(self):
        config = CacheConfig.direct_mapped(4, prefetcher="nextline")
        cache = Cache(config)
        result = cache.access(1)
        assert result.prefetched == [2]
        assert cache.contains(2)

    def test_factory(self):
        assert make_prefetcher(None) is None
        assert make_prefetcher("none") is None
        assert isinstance(make_prefetcher("stream"), StreamPrefetcher)
        with pytest.raises(ValueError):
            make_prefetcher("markov")

    def test_stream_trigger_validation(self):
        with pytest.raises(ValueError):
            StreamPrefetcher(trigger=1)


class TestPLCache:
    def _plcache(self, ways=4):
        return PLCache(CacheConfig.fully_associative(ways, lockable=True))

    def test_locked_line_never_evicted(self):
        cache = self._plcache()
        cache.preload_locked([0])
        for address in range(1, 10):
            cache.access(address, domain="attacker")
        assert cache.contains(0)

    def test_all_locked_set_serves_miss_without_allocation(self):
        cache = self._plcache(2)
        cache.preload_locked([0, 1])
        result = cache.access(5, domain="attacker")
        assert not result.hit
        assert not cache.contains(5)
        assert cache.contains(0) and cache.contains(1)

    def test_locked_line_hit_updates_replacement_state(self):
        cache = self._plcache()
        cache.preload_locked([0])
        before = cache.replacement_state(0)
        for address in (1, 2, 3):
            cache.access(address, domain="attacker")
        cache.access(0, domain="victim")
        assert cache.replacement_state(0) != before

    def test_unlock_allows_eviction(self):
        cache = self._plcache()
        cache.preload_locked([0])
        cache.unlock(0)
        for address in range(1, 10):
            cache.access(address, domain="attacker")
        assert not cache.contains(0)

    def test_config_forced_lockable(self):
        cache = PLCache(CacheConfig.fully_associative(4, lockable=False))
        cache.lock(0)
        assert cache.contains(0)


class TestHierarchy:
    def _hierarchy(self):
        l1 = CacheConfig.direct_mapped(4)
        l2 = CacheConfig.set_associative(4, 2)
        return TwoLevelCache(l1, l2, cores=2)

    def test_l1_hit_after_first_access(self):
        hierarchy = self._hierarchy()
        assert not hierarchy.access(0, core=0).hit
        assert hierarchy.access(0, core=0).hit

    def test_private_l1s(self):
        hierarchy = self._hierarchy()
        hierarchy.access(0, core=0)
        result = hierarchy.access(0, core=1)
        assert not result.l1_hit
        assert result.l2_hit

    def test_inclusion_back_invalidates_l1(self):
        hierarchy = self._hierarchy()
        hierarchy.access(0, core=0)
        # Fill set 0 of the shared 2-way L2 with conflicting lines until 0 is evicted.
        for address in (4, 8, 12, 16, 20):
            hierarchy.access(address, core=1)
        assert not hierarchy.l2.contains(0)
        assert not hierarchy.l1_caches[0].contains(0)

    def test_flush_removes_everywhere(self):
        hierarchy = self._hierarchy()
        hierarchy.access(3, core=0)
        hierarchy.flush(3)
        assert not hierarchy.contains(3, level="l2")
        assert not hierarchy.contains(3, level="l1")

    def test_unknown_core_rejected(self):
        with pytest.raises(ValueError):
            self._hierarchy().access(0, core=5)

    def test_reset(self):
        hierarchy = self._hierarchy()
        hierarchy.access(0, core=0)
        hierarchy.reset()
        assert not hierarchy.contains(0, level="l2")


class TestEventLog:
    def test_conflict_event_codes(self):
        attacker_evicts = ConflictEvent("attacker", "victim", 0, 0, 1)
        victim_evicts = ConflictEvent("victim", "attacker", 0, 0, 2)
        assert attacker_evicts.code == 1
        assert victim_evicts.code == 0

    def test_cache_records_cross_domain_conflicts(self, dm4_config):
        cache = Cache(dm4_config)
        cache.access(0, domain="victim")
        cache.access(4, domain="attacker")  # evicts the victim line in set 0
        train = cache.events.conflict_train()
        assert train == [1]

    def test_same_domain_evictions_not_recorded(self, dm4_config):
        cache = Cache(dm4_config)
        cache.access(0, domain="attacker")
        cache.access(4, domain="attacker")
        assert cache.events.conflict_train() == []

    def test_victim_miss_counting(self, dm4_config):
        cache = Cache(dm4_config)
        cache.access(0, domain="victim")
        cache.access(4, domain="attacker")
        cache.access(0, domain="victim")
        assert cache.events.victim_misses == 2
        assert cache.events.attacker_misses == 1

    def test_cyclic_interference_detected(self, dm4_config):
        cache = Cache(dm4_config)
        cache.access(0, domain="victim")
        cache.access(4, domain="attacker")
        cache.access(0, domain="victim")
        assert cache.events.total_cyclic_interference() >= 1

    def test_no_cyclic_interference_for_single_domain(self, dm4_config):
        cache = Cache(dm4_config)
        for address in (0, 4, 0, 4, 0):
            cache.access(address, domain="attacker")
        assert cache.events.total_cyclic_interference() == 0

    def test_event_log_reset(self):
        log = EventLog()
        log.record_access("attacker", False, 0, 0, "victim")
        log.record_flush("attacker", 0, 0, True)
        log.reset()
        assert log.conflicts == []
        assert log.total_accesses == 0
        assert log.flushes == []

    def test_cache_records_clflush_events(self, fa4_lru_config):
        cache = Cache(fa4_lru_config)
        cache.access(2, domain="victim")
        cache.flush(2, domain="attacker")
        cache.flush(2, domain="attacker")  # already gone: recorded, not resident
        assert cache.events.flush_count() == 2
        assert cache.events.flush_count("attacker") == 2
        assert cache.events.flush_count("victim") == 0
        first, second = cache.events.flushes
        assert first.address == 2 and first.resident
        assert second.address == 2 and not second.resident

    def test_hierarchy_back_invalidations_not_recorded_as_flushes(self, dm4_config):
        from repro.cache.config import CacheConfig
        from repro.cache.hierarchy import TwoLevelCache

        hierarchy = TwoLevelCache(dm4_config, CacheConfig.set_associative(4, 2))
        # Fill one L2 set until it evicts and back-invalidates the L1 copies.
        for address in (0, 4, 8, 12):
            hierarchy.access(address, core=0, domain="attacker")
        for cache in hierarchy.l1_caches.values():
            assert cache.events.flush_count() == 0
        # An explicit clflush IS recorded, at the shared L2 (where the
        # detectors observe).
        hierarchy.flush(0, domain="attacker")
        assert hierarchy.l2.events.flush_count("attacker") == 1

    def test_env_flush_action_is_observable_by_detectors(self):
        import repro

        env = repro.make("known/flush-reload")
        env.reset()
        flush_indices = [index for index in range(len(env.actions))
                         if env.actions.decode(index).kind.name == "FLUSH"]
        assert flush_indices, "flush_enable scenario must expose flush actions"
        env.step(flush_indices[0])
        assert env.backend.events.flush_count("attacker") == 1
