"""Tests for the detection schemes: CC-Hunter, the SVM, Cyclone, miss counting."""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.detection import (
    AutocorrelationDetector,
    BenignWorkloadGenerator,
    CycloneDetector,
    LinearSVM,
    MissCountDetector,
    StandardScaler,
    WorkloadKind,
    autocorrelation,
    autocorrelogram,
    cyclone_features,
)
from repro.detection.svm import k_fold_cross_validate


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        assert autocorrelation([1, 0, 1, 0], 0) == 1.0

    def test_perfectly_periodic_train_has_high_autocorrelation(self):
        train = [1, 0] * 20
        assert autocorrelation(train, 2) > 0.9

    def test_alternating_train_negative_at_lag_one(self):
        train = [1, 0] * 20
        assert autocorrelation(train, 1) < -0.9

    def test_constant_train_is_periodic(self):
        assert autocorrelation([1] * 10, 3) == 1.0

    def test_empty_and_long_lags(self):
        assert autocorrelation([], 1) == 0.0
        assert autocorrelation([1, 0], 5) == 0.0

    def test_negative_lag_rejected(self):
        with pytest.raises(ValueError):
            autocorrelation([1, 0], -1)

    def test_random_train_has_low_autocorrelation(self):
        rng = np.random.default_rng(0)
        train = rng.integers(0, 2, size=200).tolist()
        coefficients = autocorrelogram(train, 20)[1:]
        assert max(abs(c) for c in coefficients) < 0.3

    def test_autocorrelogram_length(self):
        assert len(autocorrelogram([1, 0, 1, 0, 1], 3)) == 4

    def test_detector_flags_periodic_train(self):
        detector = AutocorrelationDetector(threshold=0.75)
        assert detector.detect([1, 0] * 30)
        assert detector.max_autocorrelation([1, 0] * 30) > 0.75

    def test_detector_passes_random_train(self):
        rng = np.random.default_rng(1)
        detector = AutocorrelationDetector(threshold=0.75)
        assert not detector.detect(rng.integers(0, 2, size=100).tolist())

    def test_detector_ignores_tiny_trains(self):
        detector = AutocorrelationDetector(min_events=4)
        assert detector.max_autocorrelation([1, 0]) == 0.0
        assert not detector.detect([1, 0])

    def test_penalty_is_negative_for_periodic_trains(self):
        detector = AutocorrelationDetector()
        assert detector.penalty([1, 0] * 30, scale=-1.0) < -0.2
        assert detector.penalty([], scale=-1.0) == 0.0


class TestLinearSVM:
    def _separable_data(self, rng, n=60):
        benign = rng.normal(loc=0.0, scale=0.5, size=(n, 3))
        attack = rng.normal(loc=3.0, scale=0.5, size=(n, 3))
        features = np.concatenate([benign, attack])
        labels = np.concatenate([np.zeros(n), np.ones(n)])
        return features, labels

    def test_fits_separable_data(self, rng):
        features, labels = self._separable_data(rng)
        model = LinearSVM(epochs=100, seed=0)
        model.fit(features, labels)
        assert model.score(features, labels) > 0.95

    def test_predict_shape_and_values(self, rng):
        features, labels = self._separable_data(rng)
        model = LinearSVM(epochs=50, seed=0).fit(features, labels)
        predictions = model.predict(features[:5])
        assert predictions.shape == (5,)
        assert set(np.unique(predictions)) <= {0, 1}

    def test_decision_function_sign_matches_prediction(self, rng):
        features, labels = self._separable_data(rng)
        model = LinearSVM(epochs=50, seed=0).fit(features, labels)
        scores = model.decision_function(features)
        assert np.array_equal((scores > 0).astype(int), model.predict(features))

    def test_rejects_bad_labels(self, rng):
        with pytest.raises(ValueError):
            LinearSVM().fit(rng.normal(size=(4, 2)), np.array([0, 1, 2, 1]))

    def test_rejects_unfit_usage(self):
        with pytest.raises(RuntimeError):
            LinearSVM().predict(np.zeros((1, 3)))

    def test_kfold_cross_validation(self, rng):
        features, labels = self._separable_data(rng, n=40)
        mean_accuracy, scores = k_fold_cross_validate(features, labels, folds=5,
                                                      epochs=60, seed=0)
        assert len(scores) == 5
        assert mean_accuracy > 0.9

    def test_scaler(self, rng):
        features = rng.normal(loc=5.0, scale=3.0, size=(100, 4))
        scaled = StandardScaler().fit_transform(features)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_scaler_requires_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_scaler_handles_constant_features(self):
        features = np.ones((10, 2))
        scaled = StandardScaler().fit_transform(features)
        assert np.all(np.isfinite(scaled))


class TestWorkloads:
    def test_trace_length_and_domains(self):
        generator = BenignWorkloadGenerator(address_space=32, seed=0)
        trace = generator.generate(200)
        assert len(trace) <= 200
        assert {domain for domain, _ in trace} <= {"attacker", "victim"}
        assert all(0 <= address < 32 for _, address in trace)

    def test_all_kinds_generate(self):
        generator = BenignWorkloadGenerator(address_space=32, seed=1)
        for kind in WorkloadKind:
            trace = generator.generate(64, kind=kind)
            assert trace

    def test_dataset_yields_requested_count(self):
        generator = BenignWorkloadGenerator(address_space=16, seed=2)
        assert len(list(generator.dataset(5, 50))) == 5

    def test_timeslicing_limits_domain_switches(self):
        generator = BenignWorkloadGenerator(address_space=32, seed=3, timeslice=32)
        trace = generator.generate(256)
        switches = sum(1 for a, b in zip(trace, trace[1:]) if a[0] != b[0])
        assert switches < len(trace) / 4

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BenignWorkloadGenerator(address_space=2)
        with pytest.raises(ValueError):
            BenignWorkloadGenerator(timeslice=0)


class TestCyclone:
    def _attack_trace(self, length=120):
        # A prime+probe-style ping-pong between domains on the same sets.
        trace = []
        for _ in range(length // 6):
            trace.extend([("attacker", 4), ("attacker", 5), ("victim", 0),
                          ("attacker", 4), ("attacker", 5), ("victim", 1)])
        return trace

    def test_features_shape(self):
        config = CacheConfig.direct_mapped(4)
        features = cyclone_features(config, self._attack_trace(), interval=20)
        assert features.ndim == 2
        assert features.shape[1] == config.num_blocks

    def test_attack_traces_have_cyclic_interference(self):
        config = CacheConfig.direct_mapped(4)
        features = cyclone_features(config, self._attack_trace(), interval=20)
        assert features.sum() > 0

    def test_benign_traces_have_little_cyclic_interference(self):
        config = CacheConfig.direct_mapped(4)
        generator = BenignWorkloadGenerator(address_space=16, seed=5)
        benign = cyclone_features(config, generator.generate(200), interval=20)
        attack = cyclone_features(config, self._attack_trace(200), interval=20)
        assert benign.sum() < attack.sum()

    def test_detector_separates_attack_from_benign(self):
        config = CacheConfig.direct_mapped(4)
        generator = BenignWorkloadGenerator(address_space=16, seed=7)
        detector = CycloneDetector.trained_on_synthetic_benign(
            config, attack_traces=[self._attack_trace()], num_benign=10,
            trace_length=200, interval=20, seed=7)
        assert detector.detection_rate(self._attack_trace()) > 0.5
        assert detector.detection_rate(generator.generate(200)) < 0.5
        assert detector.detect(self._attack_trace())

    def test_detector_requires_traces(self):
        detector = CycloneDetector(cache_config=CacheConfig.direct_mapped(4))
        with pytest.raises(ValueError):
            detector.train([], [])

    def test_empty_trace_detection_rate(self):
        config = CacheConfig.direct_mapped(4)
        detector = CycloneDetector.trained_on_synthetic_benign(
            config, attack_traces=[self._attack_trace()], num_benign=6,
            trace_length=100, interval=20, seed=1)
        assert detector.detection_rate([]) == 0.0


class TestMissCount:
    def test_detects_after_threshold(self):
        detector = MissCountDetector(threshold=0)
        assert not detector.observe_victim_access(True)
        assert detector.observe_victim_access(False)

    def test_none_means_no_access(self):
        detector = MissCountDetector()
        assert not detector.observe_victim_access(None)
        assert detector.victim_misses == 0

    def test_threshold(self):
        detector = MissCountDetector(threshold=2)
        assert not detector.scan_trace([False, False])
        assert detector.scan_trace([False, False, False])

    def test_reset(self):
        detector = MissCountDetector()
        detector.observe_victim_access(False)
        detector.reset()
        assert not detector.detected
