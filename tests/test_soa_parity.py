"""Exhaustive parity suite: the SoA batched engine vs the object cache model.

The structure-of-arrays engine must be a pure speedup — bit-identical
hit/miss/eviction behavior, replacement state, and final contents across all
supported policies and mappings, including the per-env RNG stream consumption
of seeded-random replacement.  The suite drives both implementations with
identical seeded traces (accesses, flushes, lock/unlock) and compares every
step, then checks the VecEnv-level equivalence of the collapsed batched fast
path against per-env object environments.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.cache.cache import Cache
from repro.cache.config import CacheConfig
from repro.cache.soa import (DOMAIN_NONE, DOMAIN_NAMES, SOA_POLICIES,
                             SoACacheEngine, domain_code)
from repro.env.batched_env import BatchedGuessingGame, spec_supports_batching
from repro.rl.vec_env import VecEnv
from repro.scenarios import get_spec

NUM_ENVS = 3
BASE_SEED = 40


def make_pair(config: CacheConfig, num_envs: int = NUM_ENVS):
    """One SoA engine plus the equivalent per-env object caches (same seeds)."""
    engine = SoACacheEngine(
        config, num_envs,
        rngs=[np.random.default_rng(BASE_SEED + i) for i in range(num_envs)])
    caches = [Cache(config, rng=np.random.default_rng(BASE_SEED + i))
              for i in range(num_envs)]
    return engine, caches


def drive_and_compare(config: CacheConfig, steps: int = 300, max_address: int = 24,
                      with_flush: bool = True, with_locks: bool = False,
                      num_envs: int = NUM_ENVS):
    """Replay one seeded random trace on both implementations, step by step."""
    engine, caches = make_pair(config, num_envs)
    trace_rng = np.random.default_rng(7)
    addr_rngs = [np.random.default_rng(100 + i) for i in range(num_envs)]
    env_indices = np.arange(num_envs)
    ops = ["access", "access", "access"]
    if with_flush:
        ops.append("flush")
    if with_locks:
        ops += ["lock", "unlock"]

    for step in range(steps):
        op = ops[int(trace_rng.integers(len(ops)))]
        addresses = np.array([int(rng.integers(max_address)) for rng in addr_rngs])
        domain_id = int(trace_rng.integers(2))
        domain = ("attacker", "victim")[domain_id]
        domains = np.full(num_envs, domain_code(domain), dtype=np.int8)
        if op == "access":
            hit, way, evicted_addr, evicted_dom = engine.access(
                env_indices, addresses, domains)
            for i, cache in enumerate(caches):
                result = cache.access(int(addresses[i]), domain=domain)
                assert bool(hit[i]) == result.hit, (step, i, op)
                assert int(way[i]) == result.way, (step, i, op)
                expected_addr = (-1 if result.evicted_address is None
                                 else result.evicted_address)
                assert int(evicted_addr[i]) == expected_addr, (step, i, op)
                expected_dom = DOMAIN_NAMES.get(int(evicted_dom[i]))
                assert expected_dom == result.evicted_domain, (step, i, op)
        elif op == "flush":
            resident = engine.flush(env_indices, addresses)
            for i, cache in enumerate(caches):
                assert bool(resident[i]) == cache.flush(int(addresses[i]),
                                                        domain=domain), (step, i)
        elif op == "lock":
            # Lock a small address subset so no set ever becomes fully
            # locked (both implementations raise on a full-locked set).
            lock_addresses = addresses % 3
            engine.lock(env_indices, lock_addresses, domains)
            for i, cache in enumerate(caches):
                cache.lock(int(lock_addresses[i]), domain=domain)
        else:
            engine.unlock(env_indices, addresses)
            for i, cache in enumerate(caches):
                cache.unlock(int(addresses[i]))

        for i, cache in enumerate(caches):
            for set_index in range(config.num_sets):
                assert engine.replacement_state(i, set_index) == \
                    cache.replacement_state(set_index), (step, i, set_index)

    for i, cache in enumerate(caches):
        assert engine.contents(i) == cache.contents(), i
        assert engine.access_count[i] == cache.access_count, i
        assert engine.miss_count[i] == cache.miss_count, i
        assert engine.hit_rate(i) == pytest.approx(cache.hit_rate), i


class TestEnginePolicyParity:
    @pytest.mark.parametrize("policy", SOA_POLICIES)
    def test_fully_associative(self, policy):
        drive_and_compare(CacheConfig(num_sets=1, num_ways=4, rep_policy=policy))

    @pytest.mark.parametrize("policy", SOA_POLICIES)
    def test_set_associative(self, policy):
        drive_and_compare(CacheConfig(num_sets=4, num_ways=4, rep_policy=policy),
                          max_address=48)

    @pytest.mark.parametrize("policy", SOA_POLICIES)
    def test_random_permutation_mapping(self, policy):
        drive_and_compare(CacheConfig(num_sets=4, num_ways=4, rep_policy=policy,
                                      mapping="random_permutation", mapping_seed=3),
                          max_address=48)

    @pytest.mark.parametrize("policy", SOA_POLICIES)
    def test_locks(self, policy):
        drive_and_compare(CacheConfig(num_sets=2, num_ways=4, rep_policy=policy,
                                      lockable=True),
                          steps=200, max_address=10, with_locks=True)

    def test_direct_mapped(self):
        drive_and_compare(CacheConfig(num_sets=8, num_ways=1, rep_policy="lru"),
                          max_address=32)

    def test_eight_way_plru(self):
        drive_and_compare(CacheConfig(num_sets=1, num_ways=8, rep_policy="plru"),
                          max_address=16)


class TestEngineBatchSemantics:
    def test_partial_env_subsets(self):
        """Accessing a subset of envs must not disturb the others."""
        config = CacheConfig(num_sets=1, num_ways=4, rep_policy="lru")
        engine, caches = make_pair(config)
        trace_rng = np.random.default_rng(3)
        for _ in range(200):
            active = np.flatnonzero(trace_rng.integers(2, size=NUM_ENVS))
            if active.size == 0:
                continue
            addresses = trace_rng.integers(8, size=active.size)
            hit, way, _, _ = engine.access(active, addresses)
            for j, i in enumerate(active):
                result = caches[i].access(int(addresses[j]))
                assert bool(hit[j]) == result.hit
                assert int(way[j]) == result.way
        for i, cache in enumerate(caches):
            assert engine.contents(i) == cache.contents()

    @pytest.mark.parametrize("policy", SOA_POLICIES)
    def test_warm_up_from_empty_matches_vectorized(self, policy):
        config = CacheConfig(num_sets=2, num_ways=4, rep_policy=policy)
        scalar_engine = SoACacheEngine(config, 1)
        vector_engine = SoACacheEngine(config, 1)
        trace = [1, 5, 3, 1, 7, 2, 5, 0, 3, 6]
        scalar_engine.warm_up_from_empty(0, trace)
        vector_engine.warm_up(np.array([0]), np.array([trace]))
        assert scalar_engine.contents(0) == vector_engine.contents(0)
        for set_index in range(config.num_sets):
            assert scalar_engine.replacement_state(0, set_index) == \
                vector_engine.replacement_state(0, set_index)

    def test_all_ways_locked_raises(self):
        config = CacheConfig(num_sets=1, num_ways=2, rep_policy="lru", lockable=True)
        engine = SoACacheEngine(config, 1)
        env = np.array([0])
        engine.lock(env, np.array([0]))
        engine.lock(env, np.array([1]))
        with pytest.raises(RuntimeError, match="locked"):
            engine.access(env, np.array([2]))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="SoA kernel"):
            SoACacheEngine(CacheConfig(rep_policy="fifo"), 1)

    def test_prefetcher_rejected(self):
        with pytest.raises(ValueError, match="prefetcher"):
            SoACacheEngine(CacheConfig(prefetcher="nextline"), 1)


class TestVecEnvBatchedEquivalence:
    @pytest.mark.parametrize("policy", ["lru", "plru", "rrip", "random"])
    def test_batched_matches_per_env_objects(self, policy):
        scenario = f"guessing/{policy}-4way"
        batched = VecEnv(scenario, num_envs=4)
        reference = VecEnv(scenario, num_envs=4, backend="object")
        assert batched.batched
        assert not reference.batched
        np.testing.assert_array_equal(batched.reset(), reference.reset())
        rng = np.random.default_rng(11)
        for _ in range(150):
            actions = rng.integers(batched.num_actions, size=4)
            obs_b, rew_b, done_b, infos_b = batched.step(actions)
            obs_r, rew_r, done_r, infos_r = reference.step(actions)
            np.testing.assert_array_equal(obs_b, obs_r)
            np.testing.assert_array_equal(rew_b, rew_r)
            np.testing.assert_array_equal(done_b, done_r)
            for info_b, info_r in zip(infos_b, infos_r):
                assert info_b.get("episode") == info_r.get("episode")

    def test_batched_engages_only_for_capable_specs(self):
        assert spec_supports_batching(get_spec("guessing/lru-4way"))
        assert not spec_supports_batching(get_spec("guessing/plcache-plru-4way"))
        assert not spec_supports_batching(get_spec("covert/prime-probe"))
        assert not spec_supports_batching(get_spec("table4/cfg16"))  # hierarchy
        assert not spec_supports_batching(get_spec("table4/cfg02"))  # prefetcher
        assert not spec_supports_batching(
            get_spec("guessing/lru-4way").with_overrides(backend="object"))
        assert not spec_supports_batching(
            get_spec("guessing/lru-4way").with_overrides(**{"cache.prefetcher": "nextline"}))

    def test_batched_game_rejects_incapable_config(self):
        spec = get_spec("table4/cfg02")  # next-line prefetcher
        with pytest.raises(ValueError):
            BatchedGuessingGame(spec.build_config(), 2)

    def test_infos_list_is_reused(self):
        vec = VecEnv("guessing/lru-4way", num_envs=2)
        vec.reset()
        _, _, _, first_infos = vec.step(np.zeros(2, dtype=int))
        _, _, _, second_infos = vec.step(np.zeros(2, dtype=int))
        assert first_infos is second_infos

    def test_episode_infos_materialize_on_done_only(self):
        vec = VecEnv("guessing/lru-4way", num_envs=2)
        vec.reset()
        guess = vec.num_actions - 1  # GUESS_EMPTY ends the episode
        _, _, dones, infos = vec.step(np.array([0, guess]))
        assert dones[0] == 0.0 and dones[1] == 1.0
        assert "episode" not in infos[0]
        assert infos[1]["episode"]["length"] == 1
        # The next step clears the stale episode entry.
        _, _, dones, infos = vec.step(np.array([0, 0]))
        assert "episode" not in infos[1]


class TestSoaSingleEnvBackend:
    def test_make_backend_soa_matches_object(self):
        env_soa = repro.make("guessing/rrip-4way", seed=5, backend="soa")
        env_obj = repro.make("guessing/rrip-4way", seed=5)
        np.testing.assert_array_equal(env_soa.reset(), env_obj.reset())
        rng = np.random.default_rng(2)
        for _ in range(300):
            action = int(rng.integers(env_soa.action_space.n))
            result_soa = env_soa.step(action)
            result_obj = env_obj.step(action)
            np.testing.assert_array_equal(result_soa.observation,
                                          result_obj.observation)
            assert result_soa.reward == result_obj.reward
            assert result_soa.done == result_obj.done
            if result_soa.done:
                np.testing.assert_array_equal(env_soa.reset(), env_obj.reset())

    def test_registered_soa_scenario(self):
        env = repro.make("guessing/lru-4way-soa", seed=0)
        reference = repro.make("guessing/lru-4way", seed=0)
        np.testing.assert_array_equal(env.reset(), reference.reset())
        for action in (0, 1, 2, 5, 3):
            np.testing.assert_array_equal(env.step(action).observation,
                                          reference.step(action).observation)

    def test_soa_backend_rejects_unsupported(self):
        with pytest.raises(ValueError):
            repro.make("table4/cfg16", backend="soa")  # hierarchy
        with pytest.raises(ValueError):
            repro.make("guessing/plcache-plru-4way", backend="soa")


class TestEventLogWindow:
    def test_conflicts_and_flushes_are_bounded(self):
        from repro.cache.events import EventLog

        log = EventLog(max_events=5)
        for step in range(20):
            log.record_access("attacker", False, 0, 0, "victim")
            log.record_flush("attacker", step, 0, True)
        assert len(log.conflicts) == 5
        assert len(log.flushes) == 5
        # Scalar counters keep counting past the window.
        assert log.total_accesses == 20
        assert log.flushes[-1].address == 19
        assert log.flushes[0].address == 15

    def test_unbounded_by_default(self):
        from repro.cache.events import EventLog

        log = EventLog()
        for step in range(50):
            log.record_access("attacker", False, 0, 0, "victim")
        assert len(log.conflicts) == 50

    def test_scenario_override_plumbs_to_cache(self):
        env = repro.make("guessing/lru-4way", **{"cache.max_events": 7})
        assert env.backend.cache.events.max_events == 7
