"""Checkpoint/resume and serialization tests for the RL training stack.

The critical property: a PPO training run that is checkpointed mid-flight and
resumed — even in a fresh process — is *bit-identical* to the same run left
uninterrupted (same policy parameters, same evaluation, same history).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.autodiff import Adam, SGD
from repro.nn import Linear
from repro.rl import PPOConfig, PPOTrainer
from repro.rl.replay import AttackExtraction
from repro.rl.stats import TrainingHistory, dump_json, json_ready
from repro.rl.trainer import TrainingResult

SCENARIO = "guessing/quickstart"
PPO = dict(horizon=32, num_envs=4, minibatch_size=64, update_epochs=2)
TRAIN = dict(eval_every=2, eval_episodes=5, target_accuracy=2.0)  # never converges


def make_trainer(seed: int = 3) -> PPOTrainer:
    return PPOTrainer(SCENARIO, PPOConfig(**PPO), hidden_sizes=(16, 16), seed=seed)


def result_key(result: TrainingResult) -> dict:
    """Everything except wall time (the only field allowed to differ)."""
    data = result.to_dict()
    data.pop("wall_time_seconds")
    return data


class TestTrainerCheckpoint:
    def test_resumed_run_is_bit_identical(self, tmp_path):
        uninterrupted = make_trainer()
        reference = uninterrupted.train(max_updates=4, **TRAIN)

        interrupted = make_trainer()
        interrupted.train(max_updates=2, **TRAIN)
        path = tmp_path / "trainer.ckpt"
        interrupted.save_checkpoint(path)
        del interrupted

        resumed = PPOTrainer.load_checkpoint(path)
        result = resumed.train(max_updates=4, **TRAIN)

        ref_state, res_state = uninterrupted.policy.state_dict(), resumed.policy.state_dict()
        assert set(ref_state) == set(res_state)
        for name in ref_state:
            assert np.array_equal(ref_state[name], res_state[name]), name
        assert result_key(reference) == result_key(result)
        assert uninterrupted.evaluate(episodes=10) == resumed.evaluate(episodes=10)

    def test_checkpoint_roundtrip_in_fresh_process(self, tmp_path):
        trainer = make_trainer()
        trainer.train(max_updates=2, **TRAIN)
        path = tmp_path / "trainer.ckpt"
        trainer.save_checkpoint(path)
        expected = trainer.evaluate(episodes=8)

        script = (
            "import json; from repro.rl.trainer import PPOTrainer; "
            f"t = PPOTrainer.load_checkpoint({str(path)!r}); "
            "print(json.dumps(t.evaluate(episodes=8), sort_keys=True))"
        )
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ, PYTHONPATH=f"{src}{os.pathsep}" + os.environ.get("PYTHONPATH", ""))
        output = subprocess.run([sys.executable, "-c", script], env=env,
                                capture_output=True, text=True, check=True)
        assert json.loads(output.stdout) == json_ready(expected)

    def test_checkpoint_restores_counters_and_history(self, tmp_path):
        trainer = make_trainer()
        trainer.train(max_updates=3, **TRAIN)
        path = tmp_path / "trainer.ckpt"
        trainer.save_checkpoint(path)
        restored = PPOTrainer.load_checkpoint(path)
        assert restored.updates_done == trainer.updates_done == 3
        assert restored.env_steps == trainer.env_steps
        assert restored.history.updates == trainer.history.updates
        assert restored.seed == trainer.seed
        assert restored.rng.bit_generator.state == trainer.rng.bit_generator.state

    def test_rejects_non_checkpoint_files(self, tmp_path):
        path = tmp_path / "bogus.pkl"
        import pickle

        path.write_bytes(pickle.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            PPOTrainer.load_checkpoint(path)

    def test_update_callbacks_fire_and_are_removable(self):
        trainer = make_trainer()
        seen = []
        callback = trainer.add_update_callback(
            lambda _trainer, update, _metrics: seen.append(update))
        trainer.train(max_updates=2, **TRAIN)
        assert seen == [1, 2]
        trainer.remove_update_callback(callback)
        trainer.train(max_updates=3, **TRAIN)
        assert seen == [1, 2]


class TestOptimizerStateDict:
    def test_adam_roundtrip(self, rng):
        layer = Linear(4, 3, rng=rng)
        optimizer = Adam(layer.parameters(), lr=1e-2)
        for parameter in layer.parameters():
            parameter.grad = np.ones_like(parameter.data)
        optimizer.step()
        state = optimizer.state_dict()

        other = Adam(layer.parameters(), lr=1e-2)
        other.load_state_dict(state)
        assert other._step == optimizer._step
        for a, b in zip(other._m, optimizer._m):
            assert np.array_equal(a, b)

    def test_adam_rejects_mismatched_state(self, rng):
        layer = Linear(4, 3, rng=rng)
        optimizer = Adam(layer.parameters())
        with pytest.raises(ValueError):
            optimizer.load_state_dict({"step": 0, "m": [], "v": []})

    def test_sgd_roundtrip(self, rng):
        layer = Linear(4, 3, rng=rng)
        optimizer = SGD(layer.parameters(), lr=1e-2, momentum=0.9)
        for parameter in layer.parameters():
            parameter.grad = np.ones_like(parameter.data)
        optimizer.step()
        other = SGD(layer.parameters(), lr=1e-2, momentum=0.9)
        other.load_state_dict(optimizer.state_dict())
        for a, b in zip(other._velocity, optimizer._velocity):
            assert (a is None and b is None) or np.array_equal(a, b)


class TestResultSerialization:
    def test_training_result_json_roundtrip(self):
        history = TrainingHistory()
        history.record({"update": 1, "policy_loss": 0.25})
        history.record({"update": 1, "eval_accuracy": 0.5})
        extraction = AttackExtraction(sequences={0: ["2", "v", "g"], None: ["g"]},
                                      correct={0: True, None: False}, accuracy=0.5)
        result = TrainingResult(converged=True, env_steps=1234, updates=5,
                                epochs_to_converge=0.4, final_accuracy=0.9,
                                final_guess_rate=1.0, final_episode_length=3.5,
                                final_episode_reward=0.8, wall_time_seconds=1.5,
                                history=history, extraction=extraction)
        restored = TrainingResult.from_json(result.to_json())
        assert restored.to_dict() == result.to_dict()
        assert restored.extraction.sequences == extraction.sequences
        assert restored.extraction.correct == extraction.correct
        assert restored.history.updates == history.updates

    def test_history_jsonl_roundtrip(self):
        history = TrainingHistory()
        history.record({"update": 1, "x": 1.0})
        history.record({"update": 2, "x": np.float64(2.0)})
        restored = TrainingHistory.from_jsonl(history.to_jsonl())
        assert restored.updates == [{"update": 1, "x": 1.0}, {"update": 2, "x": 2.0}]

    def test_json_ready_normalizes_numpy(self):
        data = {"a": np.float64(1.5), "b": np.arange(3), "c": (1, 2), "d": np.bool_(True)}
        assert json_ready(data) == {"a": 1.5, "b": [0, 1, 2], "c": [1, 2], "d": True}
        json.loads(dump_json(data))
