"""Tests for the telemetry layer: registry, no-op mode, flushing, determinism.

The contract under test is the one the observability PR promises: metrics
are cheap and alloc-free to record, spans time with the monotonic clock,
``REPRO_TELEMETRY=0`` is a strict no-op, and — most importantly — campaign
results are byte-identical with telemetry on and off.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro
from repro import telemetry
from repro.runs import ExperimentSpec
from repro.store import Catalog, catalog_path
from repro.telemetry.dashboard import LocalSource, render
from repro.telemetry.registry import MetricRegistry


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Each test gets a fresh enabled registry; state never leaks across."""
    telemetry.configure(enabled=True, reset=True)
    yield
    telemetry.configure(enabled=None, reset=True)


def chaos_spec(*cells: dict) -> ExperimentSpec:
    return ExperimentSpec(experiment_id="chaos", driver="chaos_driver",
                          columns=("name", "value"), grid=cells,
                          default_scale="smoke")


# --------------------------------------------------------------------------
class TestRegistry:
    def test_counter_delta_snapshot(self):
        registry = MetricRegistry()
        counter = registry.counter("a.b.c")
        counter.inc()
        counter.inc(2.5)
        points = registry.snapshot(reset=True)
        assert points == [{"name": "a.b.c", "kind": "counter", "value": 3.5}]
        # Counters are per-flush deltas: nothing new -> nothing reported.
        assert registry.snapshot(reset=True) == []
        counter.inc()
        assert registry.snapshot(reset=True)[0]["value"] == 1.0

    def test_gauge_reports_only_when_dirty(self):
        registry = MetricRegistry()
        gauge = registry.gauge("queue.depth")
        assert registry.snapshot() == []
        gauge.set(7)
        assert registry.snapshot(reset=True)[0]["value"] == 7.0
        # Unchanged gauge stays quiet but keeps its value.
        assert registry.snapshot(reset=True) == []
        assert gauge.value == 7.0

    def test_histogram_buckets_and_overflow(self):
        registry = MetricRegistry()
        hist = registry.histogram("lat", edges=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 99.0):
            hist.record(value)
        point = registry.snapshot(reset=True)[0]
        assert point["count"] == 4
        assert point["value"] == pytest.approx(100.05)
        assert point["buckets"]["counts"] == [1, 2, 1]
        assert hist.count == 0  # reset with the snapshot

    def test_histogram_record_path_is_alloc_free(self):
        hist = MetricRegistry().histogram("lat")
        counts_buffer = hist.counts
        for _ in range(100):
            hist.record(0.01)
        assert hist.counts is counts_buffer  # in-place, never reallocated
        assert isinstance(hist.counts, np.ndarray)

    def test_kind_mismatch_rejected(self):
        registry = MetricRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_span_times_and_drains_once(self):
        registry = MetricRegistry()
        with registry.span("runner.cell", run_id="r", cell=3) as span:
            pass
        assert span.seconds is not None and span.seconds >= 0.0
        spans = registry.drain_spans()
        assert spans[0]["name"] == "runner.cell"
        assert spans[0]["labels"] == {"run_id": "r", "cell": 3}
        assert registry.drain_spans() == []

    def test_span_buffer_bounded(self):
        registry = MetricRegistry(max_pending_spans=2)
        for _ in range(5):
            with registry.span("s"):
                pass
        assert len(registry.drain_spans()) == 2
        assert registry.dropped_spans == 3

    def test_thread_concurrent_records_survive(self):
        registry = MetricRegistry()
        counter = registry.counter("c")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Lock-free increments may lose a race, but must never crash or
        # exceed the true total.
        assert 0 < counter.value <= 4000


# --------------------------------------------------------------------------
class TestNoOpMode:
    def test_configure_disabled_returns_null_handles(self):
        telemetry.configure(enabled=False)
        assert telemetry.counter("x") is telemetry.NULL_METRIC
        assert telemetry.gauge("x") is telemetry.NULL_METRIC
        assert telemetry.histogram("x") is telemetry.NULL_METRIC
        assert telemetry.span("x") is telemetry.NULL_SPAN
        telemetry.counter("x").inc()
        telemetry.histogram("x").record(1.0)
        with telemetry.span("x"):
            pass
        assert telemetry.get_registry().snapshot() == []

    def test_env_flag_disables(self, monkeypatch):
        telemetry.configure(enabled=None)  # defer to the environment
        monkeypatch.setenv(telemetry.ENV_FLAG, "0")
        assert not telemetry.enabled()
        assert telemetry.counter("x") is telemetry.NULL_METRIC
        monkeypatch.setenv(telemetry.ENV_FLAG, "1")
        assert telemetry.enabled()

    def test_flusher_noop_when_disabled(self, tmp_path):
        telemetry.configure(enabled=False)
        calls = []
        flusher = telemetry.TelemetryFlusher(
            lambda points, spans: calls.append((points, spans)))
        flusher.start()
        assert flusher._thread is None  # no thread in no-op mode
        flusher.stop()
        assert calls == []


# --------------------------------------------------------------------------
class TestFlusher:
    def test_flush_delivers_points_and_spans_once(self):
        telemetry.counter("f.c").inc(2)
        with telemetry.span("f.s"):
            pass
        batches = []
        flusher = telemetry.TelemetryFlusher(
            lambda points, spans: batches.append((points, spans)))
        flusher.flush()
        assert len(batches) == 1
        points, spans = batches[0]
        assert points[0]["name"] == "f.c" and points[0]["value"] == 2.0
        assert spans[0]["name"] == "f.s"
        flusher.flush()  # nothing new -> sink not called again
        assert len(batches) == 1

    def test_stop_performs_final_flush(self):
        batches = []
        flusher = telemetry.TelemetryFlusher(
            lambda points, spans: batches.append(points), interval=60.0)
        flusher.start()
        telemetry.counter("f.tail").inc()
        flusher.stop()
        assert any(p["name"] == "f.tail" for batch in batches for p in batch)

    def test_sink_failure_is_swallowed(self):
        telemetry.counter("f.c").inc()

        def bad_sink(points, spans):
            raise OSError("disk gone")

        flusher = telemetry.TelemetryFlusher(bad_sink)
        flusher.stop()  # must not raise

    def test_flush_to_catalog_roundtrip(self, tmp_path):
        catalog_file = tmp_path / "catalog.sqlite"
        telemetry.counter("worker.cells.completed").inc(4)
        telemetry.histogram("runner.cell.seconds").record(0.2)
        with telemetry.span("runner.cell", cell=1):
            pass
        telemetry.flush_to_catalog(catalog_file, worker="w-test")
        with Catalog(catalog_file) as catalog:
            points = catalog.telemetry_points(worker="w-test")
            names = {p["name"] for p in points}
            assert {"worker.cells.completed", "runner.cell.seconds"} <= names
            hist = next(p for p in points
                        if p["name"] == "runner.cell.seconds")
            assert hist["buckets"]["counts"] and hist["count"] == 1
            totals = {t["name"]: t["total"]
                      for t in catalog.telemetry_totals()}
            assert totals["worker.cells.completed"] == 4.0
            spans = catalog.conn.fetchall(
                "SELECT worker, name, seconds FROM telemetry_spans")
            assert [dict(s)["name"] for s in spans] == ["runner.cell"]

    def test_flush_to_catalog_none_is_noop(self):
        telemetry.counter("x").inc()
        telemetry.flush_to_catalog(None)  # must not raise
        assert telemetry.get_registry().snapshot(reset=False)


# --------------------------------------------------------------------------
class TestInstrumentation:
    def test_trainer_records_time_split_and_rates(self):
        from repro.rl.ppo import PPOConfig
        from repro.rl.trainer import PPOTrainer
        from test_rl import tiny_env_factory

        trainer = PPOTrainer(tiny_env_factory,
                             PPOConfig(horizon=8, num_envs=2,
                                       minibatch_size=16, update_epochs=1),
                             hidden_sizes=(16,), seed=0)
        trainer.train(max_updates=2, eval_every=2, eval_episodes=2)
        points = {p["name"]: p
                  for p in telemetry.get_registry().snapshot(reset=False)}
        assert points["trainer.updates.total"]["value"] == 2.0
        assert points["trainer.env_steps.total"]["value"] == 2 * 8 * 2
        assert points["trainer.time.rollout_seconds"]["value"] > 0.0
        assert points["trainer.time.update_seconds"]["value"] > 0.0
        assert points["trainer.time.eval_seconds"]["value"] > 0.0
        assert points["trainer.updates.per_second"]["value"] > 0.0
        assert points["trainer.update.seconds"]["count"] == 2

    def test_local_campaign_persists_telemetry(self, tmp_path):
        spec = chaos_spec({"mode": "ok", "name": "a"},
                          {"mode": "ok", "name": "b"})
        root = tmp_path / "runs"
        repro.run(spec, root=root)
        with Catalog(catalog_path(root)) as catalog:
            totals = {t["name"]: t["total"]
                      for t in catalog.telemetry_totals()}
            assert totals.get("runner.cell.attempts", 0) >= 2
            spans = catalog.conn.fetchall(
                "SELECT name FROM telemetry_spans")
            assert len(spans) >= 2  # one runner.cell span per executed cell

    def test_results_identical_with_telemetry_on_and_off(self, tmp_path):
        spec = chaos_spec({"mode": "ok", "name": "a", "offset": 2},
                          {"mode": "ok", "name": "b", "offset": 5})
        telemetry.configure(enabled=False, reset=True)
        repro.run(spec, root=tmp_path / "off")
        with Catalog(catalog_path(tmp_path / "off")) as catalog:
            # Strict no-op mode: the disabled run persisted zero telemetry.
            assert catalog.telemetry_points(limit=1) == []
        telemetry.configure(enabled=True, reset=True)
        repro.run(spec, root=tmp_path / "on")
        with Catalog(catalog_path(tmp_path / "on")) as catalog:
            assert catalog.telemetry_points(limit=1)
        on = (tmp_path / "on" / "chaos-smoke" / "results.json").read_bytes()
        off = (tmp_path / "off" / "chaos-smoke" / "results.json").read_bytes()
        assert on == off


# --------------------------------------------------------------------------
class TestDashboard:
    def test_render_local_snapshot(self, tmp_path):
        spec = chaos_spec({"mode": "ok", "name": "a"})
        root = tmp_path / "runs"
        repro.run(spec, root=root)
        source = LocalSource(catalog_path(root))
        frame = render(source.snapshot())
        assert "chaos-smoke" in frame
        assert "1/1" in frame and "#" in frame  # full progress bar
        assert "telemetry" in frame

    def test_render_missing_catalog(self, tmp_path):
        frame = render(LocalSource(tmp_path / "none.sqlite").snapshot())
        assert "no catalogue" in frame
        assert "campaigns" in frame  # frame still renders every pane
