"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.env.config import EnvConfig
from repro.env.guessing_game import CacheGuessingGameEnv


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def fa4_lru_config() -> CacheConfig:
    """A 4-way fully-associative LRU cache (the paper's most common setting)."""
    return CacheConfig.fully_associative(4, rep_policy="lru")


@pytest.fixture
def dm4_config() -> CacheConfig:
    """A 4-set direct-mapped cache."""
    return CacheConfig.direct_mapped(4)


@pytest.fixture
def simple_env_config(fa4_lru_config) -> EnvConfig:
    """Victim accesses 0 or nothing; attacker can reach 0-4 (Table V setting)."""
    return EnvConfig(cache=fa4_lru_config, attacker_addr_s=0, attacker_addr_e=4,
                     victim_addr_s=0, victim_addr_e=0, victim_no_access_enable=True,
                     window_size=12, max_steps=12, warmup_accesses=0, seed=7)


@pytest.fixture
def simple_env(simple_env_config) -> CacheGuessingGameEnv:
    return CacheGuessingGameEnv(simple_env_config)


@pytest.fixture
def prime_probe_env_config() -> EnvConfig:
    """Disjoint attacker/victim ranges on a direct-mapped cache (prime+probe)."""
    return EnvConfig(cache=CacheConfig.direct_mapped(4), attacker_addr_s=4, attacker_addr_e=7,
                     victim_addr_s=0, victim_addr_e=3, victim_no_access_enable=False,
                     window_size=24, max_steps=24, warmup_accesses=0, seed=3)
