"""Tests for repro.lint: per-rule fixture pairs, suppression/baseline
accounting, the registry-honesty pass, and the CLI gate."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.determinism import FALLBACK_SEED, fallback_rng, reset_fallback_rng
from repro.lint import run_lint
from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.engine import lint_file
from repro.lint.rules import rule_catalogue
from repro.lint.rules.honesty import check_registries
from repro.lint.suppressions import (BaselineEntry, check_baseline,
                                     load_baseline, parse_suppressions)
from repro.runs import register_experiment, unregister_experiment
from repro.scenarios import register, unregister

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


def lint_snippet(tmp_path: Path, source: str,
                 rel: str = "src/repro/snippet.py"):
    """Write a snippet at a repo-relative path and run the AST rules on it."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    active, suppressed = lint_file(path, tmp_path, DEFAULT_CONFIG)
    return active, suppressed


def rules_of(findings):
    return {f.rule for f in findings}


# --------------------------------------------------------------- determinism
class TestDeterminismRules:
    def test_np_module_call_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import numpy as np\n"
            "def draw():\n"
            "    return np.random.rand(4)\n"))
        assert rules_of(active) == {"determinism.np-module-call"}

    def test_np_module_call_good_generator(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import numpy as np\n"
            "def draw(seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.random(4)\n"))
        assert not active

    def test_np_module_call_respects_alias(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import numpy as xp\n"
            "def draw():\n"
            "    return xp.random.choice([1, 2])\n"))
        assert rules_of(active) == {"determinism.np-module-call"}

    def test_unseeded_rng_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import numpy as np\n"
            "rng = np.random.default_rng()\n"))
        assert rules_of(active) == {"determinism.unseeded-rng"}

    def test_unseeded_rng_good_when_seeded(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"))
        assert not active

    def test_stdlib_random_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import random\n"
            "def pick(items):\n"
            "    return random.choice(items)\n"))
        assert rules_of(active) == {"determinism.stdlib-random"}

    def test_stdlib_random_from_import_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "from random import shuffle\n"
            "def mix(items):\n"
            "    shuffle(items)\n"))
        assert rules_of(active) == {"determinism.stdlib-random"}

    def test_stdlib_seeded_instance_good(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import random\n"
            "def pick(items, seed):\n"
            "    return random.Random(seed).choice(items)\n"))
        # random.Random(seed) is a seeded instance, not the global stream;
        # .choice on the instance is not a module-level call.
        assert not active

    def test_wall_clock_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"))
        assert rules_of(active) == {"determinism.wall-clock"}

    def test_wall_clock_good_perf_counter(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import time\n"
            "def duration():\n"
            "    return time.perf_counter()\n"))
        assert not active


# ------------------------------------------------------------------ hot path
class TestHotPathRules:
    def test_numpy_alloc_in_into_function_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import numpy as np\n"
            "def encode_into(out):\n"
            "    scratch = np.zeros(8)\n"
            "    out[:] = scratch\n"))
        assert rules_of(active) == {"hotpath.numpy-alloc"}

    def test_numpy_alloc_outside_hot_path_good(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import numpy as np\n"
            "def build_buffers():\n"
            "    return np.zeros(8)\n"))
        assert not active

    def test_numpy_alloc_in_registered_kernel_bad(self, tmp_path):
        # The hot-path registry names kernels that do not use the *_into
        # naming convention, matched by module path suffix + qualname.
        active, _ = lint_snippet(tmp_path, (
            "import numpy as np\n"
            "class FusedPPOLoss:\n"
            "    def compute(self, batch):\n"
            "        return np.empty(4)\n"),
            rel="src/repro/rl/fused_loss.py")
        assert "hotpath.numpy-alloc" in rules_of(active)

    def test_numpy_alloc_inside_raise_exempt(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import numpy as np\n"
            "def step_into(out, n):\n"
            "    if n < 0:\n"
            "        raise ValueError(f'bad n: {n}')\n"
            "    out[:] = n\n"))
        assert not active

    def test_container_in_loop_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "def reset_into(out, envs):\n"
            "    for env in envs:\n"
            "        state = [env.a, env.b]\n"
            "        out[env.index] = state[0]\n"))
        assert rules_of(active) == {"hotpath.container-in-loop"}

    def test_container_outside_loop_good(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "def reset_into(out, envs):\n"
            "    order = [0, 1]\n"
            "    for env in envs:\n"
            "        out[env.index] = order[0]\n"))
        assert not active

    def test_str_format_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "def step_into(out, n):\n"
            "    label = f'step {n}'\n"
            "    out.label = label\n"))
        assert rules_of(active) == {"hotpath.str-format"}

    def test_str_format_in_raise_good(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "def step_into(out, n):\n"
            "    if n < 0:\n"
            "        raise ValueError('bad n: {}'.format(n))\n"
            "    out[:] = n\n"))
        assert not active


# --------------------------------------------------------------------- specs
class TestSpecRules:
    def test_unfrozen_spec_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class WorkerSpec:\n"
            "    worker_id: str\n"))
        assert rules_of(active) == {"spec.not-frozen"}

    def test_frozen_spec_good(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class WorkerSpec:\n"
            "    worker_id: str\n"))
        assert not active

    def test_spec_mutation_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "def rename(spec, name):\n"
            "    spec.scenario_id = name\n"
            "    return spec\n"))
        assert rules_of(active) == {"spec.mutation"}

    def test_spec_setattr_bypass_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "def rename(spec, name):\n"
            "    object.__setattr__(spec, 'scenario_id', name)\n"
            "    return spec\n"))
        assert rules_of(active) == {"spec.mutation"}

    def test_spec_replace_good(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import dataclasses\n"
            "def rename(spec, name):\n"
            "    return dataclasses.replace(spec, scenario_id=name)\n"))
        assert not active

    def test_post_init_setattr_inside_spec_class_good(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class WorkerSpec:\n"
            "    tags: tuple\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, 'tags', tuple(self.tags))\n"))
        assert not active


# -------------------------------------------------------------------- dtypes
class TestDtypeRules:
    def test_float_literal_in_strict_module_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import numpy as np\n"
            "def losses(x):\n"
            "    return x.astype(np.float64)\n"),
            rel="src/repro/rl/fused_loss.py")
        assert rules_of(active) == {"dtype.literal"}

    def test_dtype_string_in_strict_module_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import numpy as np\n"
            "def buffers(n):\n"
            "    return np.zeros(n, dtype='float32')\n"),
            rel="src/repro/nn/compiled.py")
        assert "dtype.literal" in rules_of(active)

    def test_config_dtype_in_strict_module_good(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import numpy as np\n"
            "def buffers(n, dtype):\n"
            "    return np.zeros(n, dtype=dtype)\n"),
            rel="src/repro/nn/compiled.py")
        assert not active

    def test_float_literal_outside_strict_modules_good(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import numpy as np\n"
            "def thresholds():\n"
            "    return np.float64(0.5)\n"))
        assert not active


# ----------------------------------------------------------------- artifacts
class TestArtifactRules:
    def test_write_text_in_runs_module_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "def save(path, payload):\n"
            "    path.write_text(payload)\n"),
            rel="src/repro/runs/runner.py")
        assert rules_of(active) == {"artifacts.non-atomic-write"}

    def test_write_bytes_in_trainer_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "def save_checkpoint(path, blob):\n"
            "    path.write_bytes(blob)\n"),
            rel="src/repro/rl/trainer.py")
        assert rules_of(active) == {"artifacts.non-atomic-write"}

    def test_pickle_dump_in_runs_module_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import pickle\n"
            "def save(obj, stream):\n"
            "    pickle.dump(obj, stream)\n"),
            rel="src/repro/runs/context.py")
        assert rules_of(active) == {"artifacts.non-atomic-write"}

    def test_json_dump_respects_alias(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import json as j\n"
            "def save(obj, stream):\n"
            "    j.dump(obj, stream)\n"),
            rel="src/repro/runs/cli.py")
        assert rules_of(active) == {"artifacts.non-atomic-write"}

    def test_atomic_helpers_good(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "from repro.runs.artifacts import atomic_write_json\n"
            "def save(path, payload):\n"
            "    atomic_write_json(path, payload)\n"),
            rel="src/repro/runs/runner.py")
        assert not active

    def test_artifacts_module_itself_exempt(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "def raw(path, text):\n"
            "    path.write_text(text)\n"),
            rel="src/repro/runs/artifacts.py")
        assert not active

    def test_write_text_outside_artifact_modules_good(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "def save(path, text):\n"
            "    path.write_text(text)\n"))
        assert not active


# ------------------------------------------------------- store-connection
class TestStoreConnectionRule:
    def test_bare_sqlite_connect_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import sqlite3\n"
            "def open_db(path):\n"
            "    return sqlite3.connect(path)\n"),
            rel="src/repro/store/catalog.py")
        assert rules_of(active) == {"artifacts.store-connection"}

    def test_bare_connect_outside_store_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import sqlite3\n"
            "def peek(path):\n"
            "    return sqlite3.connect(path)\n"),
            rel="src/repro/runs/runner.py")
        assert rules_of(active) == {"artifacts.store-connection"}

    def test_from_import_connect_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "from sqlite3 import connect\n"
            "def open_db(path):\n"
            "    return connect(path)\n"),
            rel="src/repro/store/query.py")
        assert rules_of(active) == {"artifacts.store-connection"}

    def test_connection_module_exempt(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import sqlite3\n"
            "def open_db(path):\n"
            "    return sqlite3.connect(path)\n"),
            rel="src/repro/store/connection.py")
        assert not active

    def test_fstring_sql_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "def fetch(conn, table):\n"
            "    return conn.execute(f'SELECT * FROM {table}')\n"),
            rel="src/repro/store/query.py")
        assert rules_of(active) == {"artifacts.store-connection"}

    def test_concatenated_sql_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "def fetch(conn, key):\n"
            "    return conn.fetchall('SELECT * FROM metrics WHERE key = '"
            " + key)\n"),
            rel="src/repro/store/catalog.py")
        assert rules_of(active) == {"artifacts.store-connection"}

    def test_percent_format_sql_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "def fetch(conn, run_id):\n"
            "    return conn.execute(\"SELECT * FROM runs WHERE run_id"
            " = '%s'\" % run_id)\n"),
            rel="src/repro/store/catalog.py")
        assert rules_of(active) == {"artifacts.store-connection"}

    def test_literal_sql_with_params_good(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "def fetch(conn, key):\n"
            "    return conn.fetchall(\n"
            "        'SELECT * FROM metrics WHERE key = ?', (key,))\n"),
            rel="src/repro/store/query.py")
        assert not active

    def test_module_constant_sql_good(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "DDL = 'CREATE TABLE IF NOT EXISTS t (x)'\n"
            "def apply(conn):\n"
            "    conn.executescript(DDL)\n"),
            rel="src/repro/store/schema.py")
        assert not active

    def test_literal_conditional_sql_good(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "def begin(conn, immediate):\n"
            "    conn.execute('BEGIN IMMEDIATE' if immediate else 'BEGIN')\n"),
            rel="src/repro/store/queue.py")
        assert not active

    def test_sql_strings_unchecked_outside_store(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "def fetch(conn, table):\n"
            "    return conn.execute(f'SELECT * FROM {table}')\n"),
            rel="src/repro/runs/runner.py")
        assert not active

    def test_store_package_obeys_rule_in_tree(self):
        """The real repro/store package must carry zero findings."""
        from repro.lint import run_lint

        report = run_lint([SRC / "repro" / "store"])
        assert not [f for f in report.findings
                    if f.rule == "artifacts.store-connection"]


# ------------------------------------------------------------ store-client
class TestStoreClientRule:
    def test_raw_urlopen_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import urllib.request\n"
            "def fetch(url):\n"
            "    return urllib.request.urlopen(url).read()\n"),
            rel="src/repro/runs/cli.py")
        assert rules_of(active) == {"artifacts.store-client"}

    def test_aliased_urlopen_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import urllib.request as ur\n"
            "def fetch(url):\n"
            "    return ur.urlopen(url).read()\n"),
            rel="src/repro/store/worker.py")
        assert rules_of(active) == {"artifacts.store-client"}

    def test_from_import_request_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "from urllib.request import Request\n"
            "def build(url):\n"
            "    return Request(url, method='POST')\n"),
            rel="src/repro/store/worker.py")
        assert rules_of(active) == {"artifacts.store-client"}

    def test_http_client_connection_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import http.client\n"
            "def open_conn(host):\n"
            "    return http.client.HTTPConnection(host)\n"),
            rel="src/repro/store/server.py")
        assert rules_of(active) == {"artifacts.store-client"}

    def test_raw_socket_connection_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import socket\n"
            "def dial(addr):\n"
            "    return socket.create_connection(addr)\n"),
            rel="src/repro/store/server.py")
        assert rules_of(active) == {"artifacts.store-client"}

    def test_client_module_exempt(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import urllib.request\n"
            "def fetch(url):\n"
            "    return urllib.request.urlopen(url).read()\n"),
            rel="src/repro/store/client.py")
        assert not active

    def test_chaos_proxy_module_exempt(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import socket\n"
            "def dial(addr):\n"
            "    return socket.create_connection(addr)\n"),
            rel="src/repro/store/chaos.py")
        assert not active

    def test_store_client_usage_good(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "from repro.store.client import StoreClient\n"
            "def fetch(url):\n"
            "    return StoreClient(url).health()\n"),
            rel="src/repro/store/worker.py")
        assert not active

    def test_benign_socket_helpers_good(self, tmp_path):
        # Only request/connection construction is banned, not the rest of
        # the socket module.
        active, _ = lint_snippet(tmp_path, (
            "import socket\n"
            "def whoami():\n"
            "    return socket.gethostname()\n"),
            rel="src/repro/store/worker.py")
        assert not active

    def test_repo_tree_has_no_raw_network_calls(self):
        report = run_lint([SRC / "repro"])
        assert not [f for f in report.findings
                    if f.rule == "artifacts.store-client"]


# ----------------------------------------------------------------- telemetry
class TestTelemetryRules:
    REL = "src/repro/telemetry/snippet.py"

    def test_record_alloc_dict_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "class Metric:\n"
            "    def record(self, value):\n"
            "        self.points = {'value': value}\n"), rel=self.REL)
        assert rules_of(active) == {"telemetry.record-alloc"}

    def test_record_alloc_numpy_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import numpy as np\n"
            "class Hist:\n"
            "    def record(self, value):\n"
            "        self.counts = np.zeros(16)\n"), rel=self.REL)
        assert rules_of(active) == {"telemetry.record-alloc"}

    def test_record_alloc_comprehension_in_inc_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "class Counter:\n"
            "    def inc(self, amount=1.0):\n"
            "        self.log = [amount for _ in range(2)]\n"), rel=self.REL)
        assert rules_of(active) == {"telemetry.record-alloc"}

    def test_record_inplace_good(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import numpy as np\n"
            "class Hist:\n"
            "    def __init__(self):\n"
            "        self.counts = np.zeros(16)\n"  # __init__ may allocate
            "    def record(self, value):\n"
            "        self.counts[int(np.searchsorted(self.counts, value))] += 1\n"
            "    def inc(self, amount=1.0):\n"
            "        self.value += amount\n"), rel=self.REL)
        assert not active

    def test_record_alloc_raise_path_exempt(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "class Metric:\n"
            "    def record(self, value):\n"
            "        if value < 0:\n"
            "            raise ValueError({'bad': value})\n"
            "        self.value += value\n"), rel=self.REL)
        assert not active

    def test_record_alloc_only_in_telemetry_package(self, tmp_path):
        # The same code outside repro/telemetry/ is not a record path.
        active, _ = lint_snippet(tmp_path, (
            "class Metric:\n"
            "    def record(self, value):\n"
            "        self.points = {'value': value}\n"),
            rel="src/repro/runs/snippet.py")
        assert "telemetry.record-alloc" not in rules_of(active)

    def test_datetime_now_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "import datetime\n"
            "def stamp():\n"
            "    return datetime.datetime.now()\n"))
        assert rules_of(active) == {"telemetry.datetime-wall-clock"}

    def test_datetime_from_import_bad(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "from datetime import date, datetime\n"
            "def stamp():\n"
            "    return datetime.utcnow(), date.today()\n"))
        findings = [f for f in active
                    if f.rule == "telemetry.datetime-wall-clock"]
        assert len(findings) == 2

    def test_datetime_arithmetic_good(self, tmp_path):
        active, _ = lint_snippet(tmp_path, (
            "from datetime import datetime, timedelta\n"
            "def span(start, end):\n"
            "    return datetime.fromtimestamp(end) - timedelta(seconds=start)\n"))
        assert not active

    def test_repo_tree_has_no_wall_clock_datetimes(self):
        report = run_lint([SRC / "repro"])
        assert not [f for f in report.findings
                    if f.rule == "telemetry.datetime-wall-clock"]


# -------------------------------------------------------------- suppressions
class TestSuppressions:
    def test_parse_suppressions(self):
        lines = ["x = 1", "y = np.zeros(3)  # repro-lint: disable=hotpath.numpy-alloc",
                 "z = 2  # repro-lint: disable=hotpath, dtype.literal"]
        parsed = parse_suppressions(lines)
        assert parsed == {2: ("hotpath.numpy-alloc",),
                          3: ("hotpath", "dtype.literal")}

    def test_inline_suppression_silences_finding(self, tmp_path):
        active, suppressed = lint_snippet(tmp_path, (
            "import numpy as np\n"
            "def encode_into(out):\n"
            "    out[:] = np.zeros(8)  # repro-lint: disable=hotpath.numpy-alloc\n"))
        assert not active
        assert len(suppressed) == 1
        assert suppressed[0].finding.rule == "hotpath.numpy-alloc"

    def test_family_suppression_covers_member_rules(self, tmp_path):
        active, suppressed = lint_snippet(tmp_path, (
            "import numpy as np\n"
            "def encode_into(out):\n"
            "    out[:] = np.zeros(8)  # repro-lint: disable=hotpath\n"))
        assert not active
        assert len(suppressed) == 1

    def test_unsanctioned_suppression_flagged(self, tmp_path):
        src_dir = tmp_path / "src/repro"
        src_dir.mkdir(parents=True)
        (src_dir / "mod.py").write_text(
            "import numpy as np\n"
            "def encode_into(out):\n"
            "    out[:] = np.zeros(8)  # repro-lint: disable=hotpath.numpy-alloc\n")
        report = run_lint([src_dir], root=tmp_path, registry_pass=False,
                          baseline_path=tmp_path / "baseline.json")
        assert rules_of(report.findings) == {"lint.unsanctioned-suppression"}

    def test_baselined_suppression_sanctioned(self, tmp_path):
        src_dir = tmp_path / "src/repro"
        src_dir.mkdir(parents=True)
        (src_dir / "mod.py").write_text(
            "import numpy as np\n"
            "def encode_into(out):\n"
            "    out[:] = np.zeros(8)  # repro-lint: disable=hotpath.numpy-alloc\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"suppressions": [
            {"path": "src/repro/mod.py", "rule": "hotpath.numpy-alloc",
             "count": 1, "reason": "test fixture"}]}))
        report = run_lint([src_dir], root=tmp_path, registry_pass=False,
                          baseline_path=baseline)
        assert report.ok

    def test_stale_baseline_flagged_on_full_run(self):
        stale = [BaselineEntry(path="src/repro/gone.py",
                               rule="hotpath.numpy-alloc", count=2,
                               reason="was fixed")]
        findings = check_baseline([], stale, full_run=True)
        assert rules_of(findings) == {"lint.stale-baseline"}
        # Partial runs cannot see every suppression, so no staleness check.
        assert check_baseline([], stale, full_run=False) == []

    def test_repo_baseline_loads_and_documents_reasons(self):
        entries = load_baseline(SRC / "repro/lint/baseline.json")
        assert entries, "the shipped baseline should not be empty"
        for entry in entries:
            assert entry.reason.strip(), f"{entry.path}:{entry.rule} needs a reason"


# ---------------------------------------------------------- registry honesty
class TestRegistryHonesty:
    def test_repo_registries_are_honest(self):
        assert check_registries() == []

    def test_broken_defense_id_caught(self):
        register(scenario_id="lint-test/broken-defense",
                 defense="no-such-defense-xyz")
        try:
            findings = check_registries()
            assert any(f.rule == "registry.defense-id"
                       and "lint-test/broken-defense" in f.message
                       for f in findings)
        finally:
            unregister("lint-test/broken-defense")

    def test_broken_experiment_scenario_caught(self):
        register_experiment(experiment_id="lint-test-exp",
                            driver="repro.experiments.table5",
                            grid=({"scenario": "no-such-scenario/xyz"},))
        try:
            findings = check_registries()
            assert any(f.rule == "registry.scenario-id"
                       and "lint-test-exp" in f.message
                       for f in findings)
        finally:
            unregister_experiment("lint-test-exp")

    def test_broken_driver_caught(self):
        register_experiment(experiment_id="lint-test-driver",
                            driver="repro.experiments.no_such_module",
                            grid=({"scenario": "guessing/lru-4way"},))
        try:
            findings = check_registries()
            assert any(f.rule == "registry.driver"
                       and "lint-test-driver" in f.message
                       for f in findings)
        finally:
            unregister_experiment("lint-test-driver")


# ----------------------------------------------------------------- fallback
class TestFallbackRng:
    def test_fallback_rng_is_reproducible(self):
        reset_fallback_rng()
        first = fallback_rng().random(4)
        reset_fallback_rng()
        second = fallback_rng().random(4)
        assert (first == second).all()

    def test_fallback_rng_is_shared(self):
        reset_fallback_rng()
        try:
            assert fallback_rng() is fallback_rng()
            # Consecutive draws differ: call sites sharing the fallback do
            # not all see the same values (e.g. two bare Linear layers).
            a = fallback_rng().random(4)
            b = fallback_rng().random(4)
            assert (a != b).any()
        finally:
            reset_fallback_rng()

    def test_seed_constant(self):
        import numpy as np
        reset_fallback_rng()
        try:
            expected = np.random.default_rng(FALLBACK_SEED).random(4)
            assert (fallback_rng().random(4) == expected).all()
        finally:
            reset_fallback_rng()


# ----------------------------------------------------------------------- CLI
class TestCli:
    def _run(self, *args, cwd=REPO_ROOT):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        return subprocess.run([sys.executable, "-m", "repro.lint", *args],
                              capture_output=True, text=True, cwd=cwd, env=env)

    def test_repo_lints_clean(self):
        result = self._run()
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean" in result.stdout

    def test_seeded_violation_fails(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\n"
                       "state = np.random.rand(3)\n")
        result = self._run(str(bad))
        assert result.returncode == 1
        assert "determinism.np-module-call" in result.stdout
        assert "bad.py:2" in result.stdout

    def test_json_format(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nstamp = time.time()\n")
        result = self._run("--format", "json", str(bad))
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "determinism.wall-clock"

    def test_list_rules(self):
        result = self._run("--list-rules")
        assert result.returncode == 0
        for rule in ("determinism.unseeded-rng", "hotpath.numpy-alloc",
                     "spec.not-frozen", "dtype.literal", "registry.soa-claim",
                     "artifacts.non-atomic-write",
                     "lint.unsanctioned-suppression"):
            assert rule in result.stdout

    def test_catalogue_has_seven_families(self):
        families = {rule.split(".")[0] for rule in rule_catalogue()}
        assert {"determinism", "hotpath", "spec", "dtype",
                "registry", "artifacts", "telemetry"} <= families


# ---------------------------------------------------------------------- mypy
@pytest.mark.skipif(
    subprocess.run([sys.executable, "-c", "import mypy"],
                   capture_output=True).returncode != 0,
    reason="mypy not installed (CI installs it)")
def test_mypy_strict_subset_passes():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini",
         "src/repro/scenarios/spec.py", "src/repro/scenarios/registry.py",
         "src/repro/defenses/spec.py", "src/repro/defenses/registry.py",
         "src/repro/runs/spec.py", "src/repro/runs/registry.py"],
        capture_output=True, text=True, cwd=REPO_ROOT)
    assert result.returncode == 0, result.stdout + result.stderr
