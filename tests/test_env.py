"""Tests for the guessing-game environment: actions, observations, rewards, wrappers."""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.detection.autocorrelation import AutocorrelationDetector
from repro.env import (
    Action,
    ActionKind,
    ActionSpace,
    Box,
    CacheGuessingGameEnv,
    Discrete,
    EnvConfig,
    HierarchyBackend,
    LatencyObservation,
    MissCountDetectionWrapper,
    MultiGuessCovertEnv,
    ObservationEncoder,
    RewardConfig,
    SimulatedCacheBackend,
    AutocorrelationPenaltyWrapper,
    make_backend,
)


class TestSpaces:
    def test_discrete(self):
        space = Discrete(5)
        assert space.contains(0) and space.contains(4)
        assert not space.contains(5)
        assert 0 <= space.sample(np.random.default_rng(0)) < 5

    def test_discrete_requires_positive(self):
        with pytest.raises(ValueError):
            Discrete(0)

    def test_box(self):
        space = Box(0.0, 1.0, (3,))
        assert space.contains(np.array([0.0, 0.5, 1.0]))
        assert not space.contains(np.array([0.0, 0.5]))
        assert space.sample(np.random.default_rng(0)).shape == (3,)


class TestRewardConfig:
    def test_defaults_match_paper(self):
        rewards = RewardConfig()
        assert rewards.correct_guess_reward == 1.0
        assert rewards.wrong_guess_reward == -1.0
        assert rewards.step_reward == -0.01

    def test_invalid_rewards_rejected(self):
        with pytest.raises(ValueError):
            RewardConfig(correct_guess_reward=0.0)
        with pytest.raises(ValueError):
            RewardConfig(step_reward=0.5)


class TestEnvConfig:
    def test_address_ranges(self, simple_env_config):
        assert simple_env_config.attacker_addresses == [0, 1, 2, 3, 4]
        assert simple_env_config.victim_addresses == [0]
        assert simple_env_config.num_secrets == 2
        assert simple_env_config.shared_addresses == [0]

    def test_empty_ranges_rejected(self, fa4_lru_config):
        with pytest.raises(ValueError):
            EnvConfig(cache=fa4_lru_config, attacker_addr_s=3, attacker_addr_e=1)

    def test_hierarchy_requires_l2(self, fa4_lru_config):
        with pytest.raises(ValueError):
            EnvConfig(cache=fa4_lru_config, hierarchy=True)

    def test_window_defaults(self, fa4_lru_config):
        config = EnvConfig(cache=fa4_lru_config)
        assert config.effective_window_size() == 16
        assert config.effective_max_steps() == 16
        assert config.effective_warmup() == 4


class TestActionSpace:
    def test_enumeration_without_flush(self, simple_env_config):
        space = ActionSpace(simple_env_config)
        # 5 accesses + trigger + guess(0) + guess-empty
        assert len(space) == 8

    def test_enumeration_with_flush(self, simple_env_config):
        simple_env_config.flush_enable = True
        space = ActionSpace(simple_env_config)
        assert len(space) == 13

    def test_encode_decode_roundtrip(self, simple_env_config):
        space = ActionSpace(simple_env_config)
        for index, action in enumerate(space):
            assert space.encode(space.decode(index)) == index
            assert space.decode(index) == action

    def test_trigger_and_guess_indices(self, simple_env_config):
        space = ActionSpace(simple_env_config)
        assert space.decode(space.trigger_index).kind is ActionKind.TRIGGER
        assert all(space.decode(i).is_guess for i in space.guess_indices)
        assert space.decode(space.guess_index_for_secret(None)).kind is ActionKind.GUESS_EMPTY
        assert space.decode(space.guess_index_for_secret(0)).address == 0

    def test_str_rendering(self):
        assert str(Action(ActionKind.ACCESS, 3)) == "3"
        assert str(Action(ActionKind.FLUSH, 2)) == "f2"
        assert str(Action(ActionKind.TRIGGER)) == "v"
        assert str(Action(ActionKind.GUESS, 1)) == "g1"
        assert str(Action(ActionKind.GUESS_EMPTY)) == "gE"

    def test_out_of_range_decode(self, simple_env_config):
        space = ActionSpace(simple_env_config)
        with pytest.raises(IndexError):
            space.decode(len(space))

    def test_unknown_action_encode(self, simple_env_config):
        space = ActionSpace(simple_env_config)
        with pytest.raises(KeyError):
            space.encode(Action(ActionKind.ACCESS, 99))


class TestObservationEncoder:
    def test_flat_size(self):
        encoder = ObservationEncoder(window_size=4, num_actions=6, max_steps=8)
        assert encoder.flat_size == 4 * (3 + 7 + 1 + 1)
        assert encoder.encode_flat().shape == (encoder.flat_size,)

    def test_padding_marks_empty_slots(self):
        encoder = ObservationEncoder(window_size=3, num_actions=2, max_steps=4)
        matrix = encoder.encode_matrix()
        assert matrix.shape == (3, encoder.step_features)
        assert np.all(matrix[:, LatencyObservation.NA.value] == 1.0)

    def test_window_slides(self):
        encoder = ObservationEncoder(window_size=2, num_actions=2, max_steps=10)
        for step in range(5):
            encoder.record(LatencyObservation.HIT, step % 2, step + 1, False)
        assert len(encoder.history) == 2
        assert encoder.history[-1].step == 5

    def test_values_bounded(self):
        encoder = ObservationEncoder(window_size=4, num_actions=3, max_steps=4)
        for step in range(8):
            encoder.record(LatencyObservation.MISS, step % 3, step + 1, True)
        flat = encoder.encode_flat()
        assert np.all(flat >= 0.0) and np.all(flat <= 1.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ObservationEncoder(window_size=0, num_actions=2, max_steps=4)


class TestGuessingGame:
    def test_reset_returns_observation(self, simple_env):
        observation = simple_env.reset()
        assert observation.shape == (simple_env.observation_size,)
        assert simple_env.observation_space.contains(observation)

    def test_secret_pinning(self, simple_env):
        simple_env.reset(secret=0)
        assert simple_env.secret == 0
        simple_env.reset(secret=None)
        assert simple_env.secret is None

    def test_access_reports_hit_after_install(self, simple_env):
        simple_env.reset(secret=None)
        access_index = simple_env.actions.encode(Action(ActionKind.ACCESS, 2))
        first = simple_env.step(access_index)
        second = simple_env.step(access_index)
        assert first.info["hit"] is False
        assert second.info["hit"] is True
        assert first.reward == simple_env.config.rewards.step_reward

    def test_correct_guess_ends_episode_with_positive_reward(self, simple_env):
        simple_env.reset(secret=0)
        simple_env.step(simple_env.actions.trigger_index)
        result = simple_env.step(simple_env.actions.guess_index_for_secret(0))
        assert result.done
        assert result.reward == simple_env.config.rewards.correct_guess_reward
        assert result.info["correct"] is True

    def test_wrong_guess_gives_negative_reward(self, simple_env):
        simple_env.reset(secret=0)
        simple_env.step(simple_env.actions.trigger_index)
        result = simple_env.step(simple_env.actions.guess_index_for_secret(None))
        assert result.done
        assert result.reward == simple_env.config.rewards.wrong_guess_reward

    def test_guess_before_trigger_is_wrong_when_forced(self, simple_env):
        simple_env.reset(secret=0)
        result = simple_env.step(simple_env.actions.guess_index_for_secret(0))
        assert result.done
        assert result.info["correct"] is False

    def test_guess_before_trigger_allowed_when_disabled(self, simple_env_config):
        simple_env_config.force_trigger_before_guess = False
        env = CacheGuessingGameEnv(simple_env_config)
        env.reset(secret=0)
        result = env.step(env.actions.guess_index_for_secret(0))
        assert result.info["correct"] is True

    def test_length_violation_terminates(self, simple_env):
        simple_env.reset(secret=0)
        access_index = simple_env.actions.encode(Action(ActionKind.ACCESS, 1))
        result = None
        for _ in range(simple_env.max_steps):
            result = simple_env.step(access_index)
        assert result.done
        assert result.info.get("length_violation")
        assert result.reward < simple_env.config.rewards.length_violation_reward / 2

    def test_trigger_updates_state(self, simple_env):
        simple_env.reset(secret=0)
        result = simple_env.step(simple_env.actions.trigger_index)
        assert simple_env.victim_triggered
        assert "victim_hit" in result.info

    def test_trigger_with_no_access_secret(self, simple_env):
        simple_env.reset(secret=None)
        result = simple_env.step(simple_env.actions.trigger_index)
        assert result.info["victim_hit"] is None

    def test_flush_reload_attack_works_end_to_end(self):
        config = EnvConfig(cache=CacheConfig.fully_associative(4), attacker_addr_s=0,
                           attacker_addr_e=3, victim_addr_s=0, victim_addr_e=0,
                           victim_no_access_enable=True, flush_enable=True,
                           window_size=8, warmup_accesses=0, seed=0)
        env = CacheGuessingGameEnv(config)
        for secret, expected_hit in ((0, True), (None, False)):
            env.reset(secret=secret)
            env.step(env.actions.encode(Action(ActionKind.FLUSH, 0)))
            env.step(env.actions.trigger_index)
            reload = env.step(env.actions.encode(Action(ActionKind.ACCESS, 0)))
            assert reload.info["hit"] is expected_hit

    def test_trace_rendering(self, simple_env):
        simple_env.reset(secret=0)
        simple_env.step(simple_env.actions.encode(Action(ActionKind.ACCESS, 1)))
        simple_env.step(simple_env.actions.trigger_index)
        simple_env.step(simple_env.actions.guess_index_for_secret(0))
        rendered = simple_env.render_trace()
        assert rendered.startswith("1 -> v -> g")

    def test_action_labels(self, simple_env):
        labels = simple_env.action_labels()
        assert len(labels) == len(simple_env.actions)
        assert "v" in labels and "gE" in labels

    def test_step_result_unpacks_like_gym(self, simple_env):
        simple_env.reset()
        observation, reward, done, info = simple_env.step(0)
        assert observation.shape == (simple_env.observation_size,)
        assert isinstance(reward, float)
        assert isinstance(done, bool)
        assert isinstance(info, dict)


class TestBackends:
    def test_simulated_backend(self, fa4_lru_config):
        backend = SimulatedCacheBackend(fa4_lru_config)
        hit, latency = backend.access(0, "attacker")
        assert hit is False
        hit, _ = backend.access(0, "attacker")
        assert hit is True
        backend.flush(0, "attacker")
        hit, _ = backend.access(0, "attacker")
        assert hit is False

    def test_simulated_backend_with_locks(self):
        config = CacheConfig.fully_associative(4, lockable=True)
        backend = SimulatedCacheBackend(config, pl_locked_addresses=[0])
        for address in range(1, 10):
            backend.access(address, "attacker")
        hit, _ = backend.access(0, "victim")
        assert hit is True
        backend.reset()
        hit, _ = backend.access(0, "victim")
        assert hit is True

    def test_hierarchy_backend(self):
        backend = HierarchyBackend(CacheConfig.direct_mapped(4), CacheConfig.set_associative(4, 2))
        hit, _ = backend.access(0, "victim")
        assert hit is False
        hit, _ = backend.access(0, "attacker")
        assert hit is False  # attacker's private L1 does not have it

    def test_make_backend_dispatch(self, simple_env_config):
        assert isinstance(make_backend(simple_env_config), SimulatedCacheBackend)
        hierarchy_config = EnvConfig(cache=CacheConfig.direct_mapped(4),
                                     l2_cache=CacheConfig.set_associative(4, 2),
                                     hierarchy=True, attacker_addr_s=4, attacker_addr_e=11,
                                     victim_addr_s=0, victim_addr_e=3,
                                     victim_no_access_enable=False)
        assert isinstance(make_backend(hierarchy_config), HierarchyBackend)


class TestCovertEnv:
    def _env(self, episode_length=24):
        config = EnvConfig(cache=CacheConfig.direct_mapped(2), attacker_addr_s=2,
                           attacker_addr_e=3, victim_addr_s=0, victim_addr_e=1,
                           victim_no_access_enable=False, window_size=8,
                           warmup_accesses=0, seed=0)
        return MultiGuessCovertEnv(config, episode_length=episode_length)

    def test_guess_does_not_end_episode(self):
        env = self._env()
        env.reset(secret=0)
        env.step(env.actions.trigger_index)
        result = env.step(env.actions.guess_index_for_secret(0))
        assert not result.done
        assert env.guesses_made == 1
        assert env.correct_guesses == 1

    def test_new_secret_drawn_after_guess(self):
        env = self._env()
        env.reset(secret=0)
        env.step(env.actions.trigger_index)
        env.step(env.actions.guess_index_for_secret(0))
        assert env.victim_triggered is False

    def test_episode_ends_at_length_with_statistics(self):
        env = self._env(episode_length=6)
        env.reset(secret=0)
        result = None
        for _ in range(6):
            result = env.step(env.actions.trigger_index)
        assert result.done
        assert "bit_rate" in result.info
        stats = env.episode_statistics()
        assert stats["guesses_made"] == 0
        assert stats["guess_accuracy"] == 0.0

    def test_no_guess_penalty_applied(self):
        env = self._env(episode_length=4)
        env.reset(secret=0)
        rewards = []
        for _ in range(4):
            rewards.append(env.step(env.actions.trigger_index).reward)
        assert rewards[-1] <= env.config.rewards.no_guess_reward


class TestWrappers:
    def _miss_env(self):
        # Attacker can evict the victim's line, so triggering after eviction
        # causes a victim miss.
        config = EnvConfig(cache=CacheConfig.direct_mapped(2), attacker_addr_s=0,
                           attacker_addr_e=3, victim_addr_s=0, victim_addr_e=0,
                           victim_no_access_enable=False, window_size=8,
                           warmup_accesses=0, seed=0)
        return CacheGuessingGameEnv(config)

    def test_miss_detection_terminates_episode(self):
        env = MissCountDetectionWrapper(self._miss_env())
        env.reset(secret=0)
        env.step(env.actions.encode(Action(ActionKind.ACCESS, 2)))  # evict line 0
        result = env.step(env.actions.trigger_index)  # victim misses -> detected
        assert result.done
        assert result.info.get("detected") is True
        assert result.reward < 0

    def test_miss_detection_ignores_victim_hits(self):
        env = MissCountDetectionWrapper(self._miss_env())
        env.reset(secret=0)
        env.step(env.actions.encode(Action(ActionKind.ACCESS, 0)))  # victim line present
        result = env.step(env.actions.trigger_index)
        assert not result.done

    def test_autocorrelation_wrapper_adds_info_at_end(self):
        base = self._miss_env()
        env = AutocorrelationPenaltyWrapper(base, AutocorrelationDetector(), penalty_scale=-1.0)
        env.reset(secret=0)
        env.step(env.actions.trigger_index)
        result = env.step(env.actions.guess_index_for_secret(0))
        assert result.done
        assert "max_autocorrelation" in result.info
        assert "conflict_train" in result.info

    def test_wrapper_delegates_attributes(self):
        env = MissCountDetectionWrapper(self._miss_env())
        assert env.action_space.n == len(env.actions)
        assert env.observation_size > 0
