"""Tests for the scenario registry and the unified ``repro.make()`` API."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.env.config import EnvConfig
from repro.env.covert_env import MultiGuessCovertEnv
from repro.env.guessing_game import CacheGuessingGameEnv
from repro.env.hardware_env import BlackboxHardwareEnv
from repro.env.wrappers import AutocorrelationPenaltyWrapper, EnvWrapper
from repro.rl.vec_env import VecEnv
from repro.scenarios import (
    ScenarioSpec,
    as_env_factory,
    get_spec,
    is_registered,
    list_scenarios,
    machine_scenario_id,
    make,
    make_factory,
    register,
    unregister,
)


class TestSpecSerialization:
    def test_every_registered_spec_round_trips_via_dict(self):
        for scenario_id in list_scenarios():
            spec = get_spec(scenario_id)
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_every_registered_spec_round_trips_via_json(self):
        for scenario_id in list_scenarios():
            spec = get_spec(scenario_id)
            restored = ScenarioSpec.from_json(spec.to_json())
            assert restored == spec
            # The JSON itself must be plain data (no custom encoders needed).
            json.loads(spec.to_json())

    def test_to_dict_is_plain_data_and_detached(self):
        spec = get_spec("guessing/lru-4way")
        data = spec.to_dict()
        data["cache"]["rep_policy"] = "mutated"
        assert spec.cache["rep_policy"] == "lru"

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            ScenarioSpec.from_dict({"scenario_id": "x", "not_a_field": 1})

    def test_unknown_env_type_rejected(self):
        with pytest.raises(ValueError, match="env type"):
            ScenarioSpec(scenario_id="x", env="weird")

    def test_unknown_wrapper_type_rejected(self):
        with pytest.raises(ValueError, match="wrapper type"):
            ScenarioSpec(scenario_id="x", wrappers=({"type": "nope"},))


class TestMake:
    def test_every_registered_scenario_is_constructible(self):
        # The SVM wrapper needs its trained detector at make() time; everything
        # else must build and step out of the box.
        for scenario_id in list_scenarios():
            if any(w["type"] == "svm_detection" for w in get_spec(scenario_id).wrappers):
                continue
            env = make(scenario_id, seed=0)
            observation = env.reset()
            assert observation.shape == (env.observation_size,)
            next_observation, reward, done, info = env.step(0)
            assert next_observation.shape == (env.observation_size,)
            assert isinstance(info, dict)

    def test_scenarios_cover_all_env_families(self):
        ids = list_scenarios()
        assert any(i.startswith("guessing/") for i in ids)
        assert any(i.startswith("covert/") for i in ids)
        assert any(i.startswith("blackbox/") for i in ids)
        assert sum(1 for i in ids if i.startswith("table4/")) == 17
        assert sum(1 for i in ids if i.startswith("known/")) == 4

    def test_make_env_types(self):
        assert isinstance(make("guessing/lru-4way"), CacheGuessingGameEnv)
        assert isinstance(make("covert/prime-probe"), MultiGuessCovertEnv)
        assert isinstance(make("covert/prime-probe-cchunter"),
                          AutocorrelationPenaltyWrapper)
        assert isinstance(make(machine_scenario_id("Core i7-6700:L2")),
                          BlackboxHardwareEnv)

    def test_make_seeds_the_env(self):
        env_a = make("guessing/lru-4way", seed=3)
        env_b = make("guessing/lru-4way", seed=3)
        assert env_a.config.seed == 3
        secrets_a = [env_a.reset() is not None and env_a.secret for _ in range(8)]
        secrets_b = [env_b.reset() is not None and env_b.secret for _ in range(8)]
        assert secrets_a == secrets_b

    def test_make_accepts_spec_instances(self):
        spec = get_spec("guessing/lru-4way")
        env = make(spec, seed=1)
        assert isinstance(env, CacheGuessingGameEnv)

    def test_unknown_scenario_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            make("guessing/does-not-exist")

    def test_pl_cache_scenario_installs_locks(self):
        env = make("guessing/plcache-plru-4way")
        env.reset()
        assert env.backend.pl_locked_addresses == [0]
        assert env.backend.cache.contains(0)

    def test_table4_hierarchy_scenario(self):
        env = make("table4/cfg16")
        assert env.config.hierarchy
        env.reset()
        _observation, _reward, _done, info = env.step(0)
        assert "hit" in info


class TestOverrides:
    def test_flat_field_routing(self):
        spec = get_spec("guessing/lru-4way").with_overrides(
            window_size=20, step_reward=-0.05, rep_policy="plru")
        assert spec.env_kwargs["window_size"] == 20
        assert spec.rewards["step_reward"] == -0.05
        assert spec.cache["rep_policy"] == "plru"

    def test_dotted_path_overrides(self):
        spec = get_spec("guessing/lru-4way").with_overrides(**{"cache.num_ways": 8})
        assert spec.cache["num_ways"] == 8
        # The original registered spec is untouched (specs are frozen values).
        assert get_spec("guessing/lru-4way").cache["num_ways"] == 4

    def test_mapping_override_merges(self):
        spec = get_spec("guessing/lru-4way").with_overrides(cache={"num_ways": 8})
        assert spec.cache["num_ways"] == 8
        assert spec.cache["rep_policy"] == "lru"  # untouched keys survive

    def test_unknown_override_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario override"):
            get_spec("guessing/lru-4way").with_overrides(not_a_knob=1)

    def test_make_applies_overrides(self):
        env = make("guessing/lru-4way", **{"cache.num_ways": 8},
                   attacker_addr_e=8, window_size=24, max_steps=24)
        assert env.config.cache.num_ways == 8
        assert env.config.attacker_addresses == list(range(9))

    def test_wrapper_override_replaces_pipeline(self):
        env = make("covert/prime-probe-cchunter",
                   wrappers=({"type": "autocorrelation_penalty",
                              "penalty_scale": -7.0},))
        assert isinstance(env, AutocorrelationPenaltyWrapper)
        assert env.penalty_scale == -7.0


class TestInheritance:
    def test_register_with_base_derives_and_overrides(self):
        try:
            spec = register(base="guessing/lru-4way",
                            scenario_id="guessing/_test-derived",
                            **{"cache.rep_policy": "rrip", "window_size": 30})
            assert spec.scenario_id == "guessing/_test-derived"
            assert spec.cache["rep_policy"] == "rrip"
            assert spec.env_kwargs["window_size"] == 30
            # Untouched fields inherited from the base.
            assert spec.env_kwargs["attacker_addr_e"] == 4
            assert is_registered("guessing/_test-derived")
            env = make("guessing/_test-derived")
            assert env.config.cache.rep_policy == "rrip"
        finally:
            unregister("guessing/_test-derived")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(base="guessing/lru-4way", scenario_id="guessing/lru-4way")

    def test_derive_does_not_mutate_base(self):
        base = get_spec("guessing/lru-4way")
        derived = base.derive("guessing/_tmp", **{"cache.num_ways": 16})
        assert derived.cache["num_ways"] == 16
        assert base.cache["num_ways"] == 4


class TestFactoriesAndVecEnv:
    def test_make_factory_passes_seed(self):
        factory = make_factory("guessing/lru-4way")
        assert factory(5).config.seed == 5
        assert factory.spec.scenario_id == "guessing/lru-4way"

    def test_as_env_factory_passthrough_and_resolution(self):
        def factory(seed):
            return make("guessing/lru-4way", seed=seed)

        assert as_env_factory(factory) is factory
        env = as_env_factory("guessing/lru-4way")(2)
        assert isinstance(env, CacheGuessingGameEnv)

    def test_vec_env_from_scenario_id(self):
        vec = VecEnv("guessing/lru-4way", num_envs=3)
        observations = vec.reset()
        assert observations.shape == (3, vec.observation_size)
        rng = np.random.default_rng(0)
        for _ in range(5):
            actions = rng.integers(vec.num_actions, size=3)
            observations, rewards, dones, infos = vec.step(actions)
            assert observations.shape == (3, vec.observation_size)
            assert len(infos) == 3

    def test_vec_env_reuses_preallocated_buffers(self):
        vec = VecEnv("guessing/lru-4way", num_envs=2)
        vec.reset()
        seen = set()
        for _ in range(4):
            observations, rewards, dones, _infos = vec.step(np.zeros(2, dtype=int))
            seen.add(id(observations))
            seen.add(id(rewards))
            seen.add(id(dones))
        # Double buffering: exactly two arrays of each kind, cycled forever.
        assert len(seen) == 6

    def test_vec_env_batches_match_single_env(self):
        # The allocation-free step_into path must produce exactly the
        # observations/rewards the classic step() path produces.
        vec = VecEnv("guessing/lru-4way", num_envs=2)
        reference = make("guessing/lru-4way", seed=0)
        batch = vec.reset()
        single = reference.reset()
        np.testing.assert_array_equal(batch[0], single)
        for action in (0, 1, 2, 0, 3):
            batch, rewards, dones, _ = vec.step(np.array([action, action]))
            result = reference.step(action)
            if result.done:
                single = reference.reset()
            else:
                single = result.observation
            np.testing.assert_array_equal(batch[0], single)
            assert rewards[0] == pytest.approx(result.reward)

    def test_vec_env_wrapped_envs_fall_back_to_generic_path(self):
        vec = VecEnv("covert/prime-probe-cchunter", num_envs=2,
                     **{"cache.num_sets": 2, "attacker_addr_s": 2,
                        "attacker_addr_e": 3, "victim_addr_e": 1,
                        "window_size": 8, "episode_length": 12})
        assert all(isinstance(env, EnvWrapper) for env in vec.envs)
        assert vec._fast_path == [False, False]
        vec.reset()
        for _ in range(12):
            _obs, _rewards, dones, infos = vec.step(np.zeros(2, dtype=int))
        # The episode ended, so the wrapper's end-of-episode penalty ran.
        assert any("autocorrelation_penalty" in info for info in infos)

    def test_trainer_accepts_scenario_id(self):
        from repro.rl.ppo import PPOConfig
        from repro.rl.trainer import PPOTrainer

        trainer = PPOTrainer("guessing/quickstart",
                             PPOConfig(horizon=8, num_envs=2, minibatch_size=8,
                                       update_epochs=1),
                             hidden_sizes=(8,), seed=0)
        result = trainer.train(max_updates=1, eval_every=1, eval_episodes=2)
        assert result.env_steps == 16


class TestCompatibilityShims:
    def test_old_constructor_signatures_still_work(self, simple_env_config):
        env = CacheGuessingGameEnv(simple_env_config)
        assert env.reset().shape == (env.observation_size,)
        locked = CacheGuessingGameEnv(simple_env_config, pl_locked_addresses=None)
        assert locked.reset() is not None
        covert = MultiGuessCovertEnv(
            make("covert/prime-probe").config.__class__(
                cache=simple_env_config.cache), episode_length=12)
        assert covert.reset() is not None

    def test_experiment_factories_remain_importable(self):
        from repro.experiments.table3 import make_env_factory as t3
        from repro.experiments.table5 import make_env_factory as t5
        from repro.experiments.table6 import make_env_factory as t6
        from repro.experiments.table7 import make_env_factory as t7
        from repro.experiments.table8_fig3 import make_covert_env_factory as t8

        assert callable(t3) and callable(t5) and callable(t6) and callable(t7)
        env = t8(2, 12)(0)
        assert isinstance(env, MultiGuessCovertEnv)

    def test_baselines_accept_scenarios_and_configs(self):
        from repro.rl.baselines import RandomSearchBaseline

        by_id = RandomSearchBaseline("guessing/lru-4way", seed=0)
        result = by_id.search(max_sequences=3, trials_per_sequence=1)
        assert result.sequences_tried <= 3
        config = get_spec("guessing/lru-4way").build_config()
        assert isinstance(config, EnvConfig)
        by_config = RandomSearchBaseline(config, seed=0)
        assert by_config.search(max_sequences=1, trials_per_sequence=1) is not None

    def test_evaluate_action_sequence_accepts_scenario(self):
        from repro.attacks.evaluate import evaluate_action_sequence

        accuracy, steps = evaluate_action_sequence("known/prime-probe",
                                                   [0, 1, 2], trials=1)
        assert 0.0 <= accuracy <= 1.0
        assert steps > 0
