"""Tests for the experiment registry, campaign runner, artifacts, and CLI."""

from __future__ import annotations

import json

import pytest

import repro
from repro.experiments import table1_known_attacks, table5
from repro.experiments.common import SMOKE, resolve_scale
from repro.rl.stats import dump_json
from repro.runs import (
    CampaignInterrupted,
    CellContext,
    ExperimentSpec,
    campaign_status,
    get_experiment,
    list_campaigns,
    list_experiments,
    load_rows,
    register_experiment,
    unregister_experiment,
)
from repro.runs.cli import main as cli_main
from repro.runs.runner import cell_slug

EXPECTED_EXPERIMENTS = {"table1", "table3", "table4", "table5", "table6", "table7",
                        "table8", "table9", "table10", "fig4", "search"}


class TestExperimentSpec:
    def test_builtin_catalogue_registered(self):
        assert EXPECTED_EXPERIMENTS <= set(list_experiments())

    def test_json_roundtrip_for_every_builtin(self):
        for experiment_id in list_experiments():
            spec = get_experiment(experiment_id)
            restored = ExperimentSpec.from_json(spec.to_json())
            assert restored == spec

    def test_requires_driver(self):
        with pytest.raises(ValueError):
            ExperimentSpec(experiment_id="x")

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec.from_dict({"experiment_id": "x", "driver": "y", "bogus": 1})

    def test_cells_static_grid(self):
        spec = get_experiment("table5")
        cells = spec.cells("smoke")
        assert cells == [{"policy": "lru"}, {"policy": "plru"}, {"policy": "rrip"}]
        cells[0]["policy"] = "mutated"
        assert spec.cells("smoke")[0] == {"policy": "lru"}, "cells must be copies"

    def test_cells_scale_dependent(self):
        table3 = get_experiment("table3")
        assert len(table3.cells("bench")) == 1
        assert len(table3.cells("paper")) > 1

    def test_registry_guards(self):
        spec = ExperimentSpec(experiment_id="tmp/exp", driver="repro.experiments.fig4")
        register_experiment(spec)
        try:
            with pytest.raises(ValueError):
                register_experiment(spec)
            register_experiment(spec, overwrite=True)
            assert get_experiment("tmp/exp") == spec
        finally:
            unregister_experiment("tmp/exp")
        with pytest.raises(KeyError):
            get_experiment("tmp/exp")

    def test_format_rows_uses_driver_formatter(self):
        spec = get_experiment("table1")
        rows = [{"attack_category": "prime+probe", "accuracy": 1.0}]
        assert "Table I" in spec.format_rows(rows)


class TestCampaignFastExperiments:
    """Fast, training-free experiments exercise the whole runner cheaply."""

    def test_rows_identical_to_legacy_shim(self, tmp_path):
        campaign = repro.run("table1", scale="smoke", out_dir=tmp_path / "c")
        assert dump_json(campaign.rows) == dump_json(table1_known_attacks.run("smoke"))

    def test_artifact_layout(self, tmp_path):
        out = tmp_path / "c"
        campaign = repro.run("fig4", scale="smoke", out_dir=out)
        assert (out / "manifest.json").exists()
        assert (out / "results.json").exists()
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["experiment"]["experiment_id"] == "fig4"
        assert [c["params"] for c in manifest["cells"]] == campaign.spec.cells("smoke")
        for cell in manifest["cells"]:
            result = json.loads((out / "cells" / cell["slug"] / "result.json").read_text())
            assert result["row"] == campaign.rows[cell["index"]]

    def test_parallel_matches_serial(self, tmp_path):
        serial = repro.run("search", scale="smoke", out_dir=tmp_path / "serial")
        parallel = repro.run("search", scale="smoke", workers=4,
                             out_dir=tmp_path / "parallel")
        assert dump_json(serial.rows) == dump_json(parallel.rows)

    def test_resume_skips_completed_cells(self, tmp_path):
        out = tmp_path / "c"
        first = repro.run("table10", scale="smoke", out_dir=out)
        second = repro.run("table10", scale="smoke", out_dir=out)
        assert second.resumed == len(second.cells)
        assert dump_json(second.rows) == dump_json(first.rows)

    def test_refuses_mismatched_out_dir(self, tmp_path):
        out = tmp_path / "c"
        repro.run("table1", scale="smoke", out_dir=out)
        with pytest.raises(ValueError):
            repro.run("fig4", scale="smoke", out_dir=out)
        with pytest.raises(ValueError):
            repro.run("table1", scale="smoke", seed=9, out_dir=out)

    def test_status_and_load_rows(self, tmp_path):
        campaign = repro.run("table1", scale="smoke", root=tmp_path)
        status = campaign_status(campaign.out_dir)
        assert status["status"] == "complete"
        assert status["completed"] == status["cells"] == 4
        assert [s["campaign"] for s in list_campaigns(tmp_path)] == ["table1-smoke"]
        rows = load_rows("table1", scale="smoke", root=tmp_path)
        assert dump_json(rows) == dump_json(campaign.rows)

    def test_load_rows_missing_campaign(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_rows("table1", scale="smoke", root=tmp_path)

    def test_cell_slug_stability(self):
        assert cell_slug(0, {"policy": "lru"}) == "c00-lru"
        assert cell_slug(12, {}) == "c12"
        slug = cell_slug(1, {"attack": "lru state (addr-based)"})
        assert " " not in slug and "(" not in slug


class TestCampaignTraining:
    """SMOKE-scale RL campaigns: determinism and checkpointed resume."""

    def test_table5_serial_parallel_resume_all_identical(self, tmp_path):
        legacy = table5.run(SMOKE)
        serial = repro.run("table5", scale="smoke", out_dir=tmp_path / "serial")
        assert dump_json(serial.rows) == dump_json(legacy)

        parallel = repro.run("table5", scale="smoke", workers=3,
                             out_dir=tmp_path / "parallel")
        assert dump_json(parallel.rows) == dump_json(serial.rows)

        with pytest.raises(CampaignInterrupted):
            repro.run("table5", scale="smoke", out_dir=tmp_path / "resume",
                      interrupt_after_updates=3)
        status = campaign_status(tmp_path / "resume")
        assert status["status"] == "in-flight"
        assert status["in_flight"] >= 1
        resumed = repro.run("table5", scale="smoke", out_dir=tmp_path / "resume")
        assert dump_json(resumed.rows) == dump_json(serial.rows)

    def test_cell_artifacts_include_training_history(self, tmp_path):
        out = tmp_path / "c"
        repro.run("table5", scale="smoke", out_dir=out)
        histories = list(out.glob("cells/*/run0.history.jsonl"))
        assert len(histories) == 3
        record = json.loads(histories[0].read_text().splitlines()[0])
        assert "update" in record
        # no lingering checkpoints after completion
        assert not list(out.glob("cells/*/*.checkpoint.pkl"))


class TestCellContext:
    def test_training_memoization(self, tmp_path):
        from repro.experiments.common import train_agent

        ctx = CellContext(tmp_path, checkpoint_every=2)
        first = train_agent("guessing/quickstart", SMOKE, seed=1, ctx=ctx)
        assert ctx.result_path("train").exists()
        second = train_agent("guessing/quickstart", SMOKE, seed=1, ctx=ctx)
        ref = first.to_dict()
        assert second.to_dict() == ref  # loaded from the memo, not retrained
        assert ctx.load_policy("train") is not None

    def test_refuses_artifact_reuse_under_different_parameters(self, tmp_path):
        from repro.experiments.common import BENCH, train_agent

        ctx = CellContext(tmp_path, checkpoint_every=2)
        train_agent("guessing/quickstart", SMOKE, seed=1, ctx=ctx)
        with pytest.raises(ValueError, match="different parameters"):
            train_agent("guessing/quickstart", SMOKE, seed=2, ctx=ctx)
        with pytest.raises(ValueError, match="different parameters"):
            train_agent("guessing/quickstart", BENCH, seed=1, ctx=ctx)

    def test_status_counts_memoized_partial_cells_as_in_flight(self, tmp_path):
        out = tmp_path / "c"
        repro.run("table10", scale="smoke", out_dir=out)
        # Simulate a multi-run cell interrupted *between* trainings: the cell
        # has memoized training results but neither a checkpoint nor its row.
        cell_dir = next((out / "cells").iterdir())
        (cell_dir / "result.json").unlink()
        (cell_dir / "run0.result.json").write_text("{}")
        status = campaign_status(out)
        assert status["in_flight"] == 1
        assert status["status"] == "in-flight"


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in EXPECTED_EXPERIMENTS:
            assert experiment_id in output

    def test_list_scenarios(self, capsys):
        assert cli_main(["list", "--scenarios"]) == 0
        assert "guessing/lru-4way" in capsys.readouterr().out

    def test_run_results_status(self, tmp_path, capsys):
        root = str(tmp_path)
        assert cli_main(["run", "table1", "--scale", "smoke", "--root", root]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output and "4/4 cells complete" in output

        assert cli_main(["results", "table1", "--scale", "smoke", "--root", root,
                         "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert dump_json(rows) == dump_json(table1_known_attacks.run("smoke"))

        assert cli_main(["status", "--root", root]) == 0
        assert "table1-smoke" in capsys.readouterr().out

    def test_results_missing_campaign(self, tmp_path, capsys):
        assert cli_main(["results", "table1", "--scale", "smoke",
                         "--root", str(tmp_path)]) == 1

    def test_run_json_format(self, tmp_path, capsys):
        assert cli_main(["run", "fig4", "--scale", "smoke",
                         "--root", str(tmp_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "fig4"
        assert len(payload["rows"]) == 3


class TestScaleResolution:
    def test_resolve_scale_accepts_scale_and_name(self):
        assert resolve_scale("smoke") is SMOKE
        assert resolve_scale(SMOKE) is SMOKE
        assert resolve_scale(None).name == "bench"

    def test_resolve_scale_rejects_unknown(self):
        with pytest.raises(KeyError):
            resolve_scale("galactic")
