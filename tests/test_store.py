"""Tests for the campaign service: catalogue, queue, workers, serve, query.

The multi-worker scenarios use the training-free ``tests/chaos_driver``
experiment so drains finish in milliseconds; the kill-and-reclaim scenario
runs a real ``python -m repro work`` subprocess and kills it mid-cell.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.rl.stats import dump_json
from repro.runs import ExperimentSpec, register_experiment, unregister_experiment
from repro.runs.cli import main as cli_main
from repro.store import Catalog, JobQueue, catalog_path, connect, spec_hash
from repro.store.catalog import code_version
from repro.store.ingest import (
    ingest,
    ingest_bench_file,
    record_bench_entry,
)
from repro.store.query import aggregate_bench, aggregate_metric, format_rows
from repro.store.queue import Job
from repro.store.server import make_server
from repro.store.worker import submit_campaign, work

REPO_ROOT = Path(__file__).resolve().parents[1]


def chaos_spec(*cells: dict) -> ExperimentSpec:
    return ExperimentSpec(experiment_id="chaos", driver="chaos_driver",
                          columns=("name", "value"), grid=cells,
                          default_scale="smoke")


# --------------------------------------------------------------------------
class TestConnection:
    def test_schema_created_and_wal(self, tmp_path):
        with connect(tmp_path / "catalog.sqlite") as conn:
            mode = conn.scalar("PRAGMA journal_mode")
            assert mode == "wal"
            tables = {r["name"] for r in conn.fetchall(
                "SELECT name FROM sqlite_master WHERE type = 'table'")}
            assert {"runs", "cells", "metrics", "bench", "jobs",
                    "lease_events", "provenance", "meta", "idempotency",
                    "telemetry_points", "telemetry_spans"} <= tables

    def test_refuses_newer_schema(self, tmp_path):
        path = tmp_path / "catalog.sqlite"
        with connect(path) as conn:
            conn.execute("UPDATE meta SET value = '999' "
                         "WHERE key = 'schema_version'")
        with pytest.raises(RuntimeError, match="newer"):
            connect(path)

    def test_transaction_rolls_back(self, tmp_path):
        with connect(tmp_path / "catalog.sqlite") as conn:
            with pytest.raises(RuntimeError):
                with conn.transaction():
                    conn.execute(
                        "INSERT INTO bench (benchmark, key, value, source)"
                        " VALUES ('b', 'k', 1.0, 's')")
                    raise RuntimeError("boom")
            assert conn.scalar("SELECT COUNT(*) FROM bench") == 0

    def test_shared_clock(self, tmp_path):
        with connect(tmp_path / "catalog.sqlite") as conn:
            now = conn.now()
            assert isinstance(now, int) and now > 1_700_000_000

    def test_upgrades_v1_catalog_in_place(self, tmp_path):
        # A pre-PR-9 catalogue: no idempotency table, schema_version '1'.
        path = tmp_path / "catalog.sqlite"
        with connect(path) as conn:
            conn.execute("DROP TABLE idempotency")
            conn.execute("UPDATE meta SET value = '1' "
                         "WHERE key = 'schema_version'")
        with connect(path) as conn:
            assert conn.scalar("SELECT value FROM meta "
                               "WHERE key = 'schema_version'") == "3"
            assert conn.scalar(
                "SELECT COUNT(*) FROM sqlite_master "
                "WHERE type = 'table' AND name = 'idempotency'") == 1

    def test_upgrades_v2_catalog_in_place(self, tmp_path):
        # A pre-PR-10 catalogue: no telemetry tables, schema_version '2'.
        path = tmp_path / "catalog.sqlite"
        with connect(path) as conn:
            conn.execute("DROP TABLE telemetry_points")
            conn.execute("DROP TABLE telemetry_spans")
            conn.execute("UPDATE meta SET value = '2' "
                         "WHERE key = 'schema_version'")
        with connect(path) as conn:
            assert conn.scalar("SELECT value FROM meta "
                               "WHERE key = 'schema_version'") == "3"
            assert conn.scalar(
                "SELECT COUNT(*) FROM sqlite_master WHERE type = 'table'"
                " AND name IN ('telemetry_points', 'telemetry_spans')") == 2


# --------------------------------------------------------------------------
class TestCatalog:
    def test_runner_records_campaign(self, tmp_path):
        root = tmp_path / "runs"
        campaign = repro.run("table1", scale="smoke", root=root)
        with Catalog(catalog_path(root)) as catalog:
            assert catalog.has_run("table1-smoke")
            info = catalog.run_info("table1-smoke")
            assert info["status"] == "complete"
            assert info["provenance"]["spec_hash"] == spec_hash(
                campaign.spec.to_json())
            assert info["provenance"]["seed"] == campaign.seed
            rows = catalog.rows("table1-smoke")
        assert dump_json(rows) == dump_json(campaign.rows)

    def test_catalog_disabled(self, tmp_path):
        root = tmp_path / "runs"
        repro.run("table1", scale="smoke", root=root, catalog=False)
        assert not catalog_path(root).exists()

    def test_record_cell_failure_then_recovery(self, tmp_path):
        spec = chaos_spec({"mode": "flaky", "name": "a", "fails": 1})
        root = tmp_path / "runs"
        first = repro.run(spec, out_dir=root / "chaos-smoke", strict=False)
        assert first.failed == 1
        with Catalog(catalog_path(root)) as catalog:
            statuses = catalog.cell_statuses("chaos-smoke")
            assert statuses[0]["status"] == "failed"
            assert statuses[0]["attempts"] == 1
        second = repro.run(spec, out_dir=root / "chaos-smoke", strict=False)
        assert second.completed == 1
        with Catalog(catalog_path(root)) as catalog:
            statuses = catalog.cell_statuses("chaos-smoke")
            assert statuses[0]["status"] == "completed"
            assert catalog.run_info("chaos-smoke")["status"] == "complete"

    def test_metrics_exploded_for_query(self, tmp_path):
        root = tmp_path / "runs"
        campaign = repro.run("table1", scale="smoke", root=root)
        with Catalog(catalog_path(root)) as catalog:
            rows = aggregate_metric(catalog, "accuracy", by="attack_category")
        assert len(rows) == len(campaign.rows)
        for row in rows:
            assert row["n"] == 1

    def test_code_version_resolves_in_repo(self):
        version = code_version(REPO_ROOT)
        assert version == "unknown" or len(version) == 40


# --------------------------------------------------------------------------
class TestJobQueue:
    def _submitted(self, tmp_path, cells=2):
        spec = chaos_spec(*({"mode": "ok", "name": f"c{i}"}
                            for i in range(cells)))
        root = tmp_path / "runs"
        submission = submit_campaign(spec, root=root)
        catalog = Catalog(catalog_path(root))
        return submission, catalog, JobQueue(catalog)

    def test_claim_orders_by_cell_index(self, tmp_path):
        submission, catalog, queue = self._submitted(tmp_path)
        try:
            first = queue.claim("w1")
            second = queue.claim("w2")
            assert (first.cell_index, second.cell_index) == (0, 1)
            assert queue.claim("w3") is None
        finally:
            catalog.close()

    def test_complete_requires_live_lease(self, tmp_path):
        submission, catalog, queue = self._submitted(tmp_path)
        try:
            job = queue.claim("w1")
            assert queue.complete(job, "imposter") is False
            assert queue.complete(job, "w1") is True
            assert queue.counts(submission.run_id)["done"] == 1
        finally:
            catalog.close()

    def test_release_returns_to_pending_then_fails(self, tmp_path):
        submission, catalog, queue = self._submitted(tmp_path, cells=1)
        queue.max_job_attempts = 2
        try:
            job = queue.claim("w1")
            assert queue.release(job, "w1", error="boom") == "pending"
            job = queue.claim("w1")
            assert job.attempts == 2
            assert queue.release(job, "w1", error="boom") == "failed"
            assert queue.outstanding(submission.run_id) == 0
        finally:
            catalog.close()

    def test_expired_lease_is_reclaimed(self, tmp_path):
        submission, catalog, queue = self._submitted(tmp_path, cells=1)
        try:
            job = queue.claim("w1", lease_ttl=-1)  # born expired
            reclaimed = queue.claim("w2")
            assert reclaimed is not None
            assert reclaimed.reclaimed_from == "w1"
            events = [e["event"] for e in
                      queue.lease_events(submission.run_id)]
            assert events == ["claimed", "reclaimed"]
            # The dead worker's late completion must be rejected.
            assert queue.complete(job, "w1") is False
            assert queue.complete(reclaimed, "w2") is True
        finally:
            catalog.close()

    def test_heartbeat_extends_and_detects_loss(self, tmp_path):
        submission, catalog, queue = self._submitted(tmp_path, cells=1)
        try:
            job = queue.claim("w1", lease_ttl=60)
            assert queue.heartbeat(job, "w1", lease_ttl=60) is True
            assert queue.heartbeat(job, "imposter", lease_ttl=60) is False
        finally:
            catalog.close()

    def test_release_after_budget_exhausted_is_terminal(self, tmp_path):
        submission, catalog, queue = self._submitted(tmp_path, cells=1)
        queue.max_job_attempts = 1
        try:
            job = queue.claim("w1")
            assert job.attempts == 1
            assert queue.release(job, "w1", error="boom") == "failed"
            # The job is retired: a second release of the same handle is a
            # no-op (no lease to give back, no duplicate event), and nothing
            # is claimable.
            queue.release(job, "w1", error="boom again")
            assert queue.claim("w2") is None
            assert queue.counts(submission.run_id) == {"failed": 1}
            events = [e["event"] for e in
                      queue.lease_events(submission.run_id)]
            assert events == ["claimed", "failed"]
        finally:
            catalog.close()

    def test_release_by_non_owner_is_ignored(self, tmp_path):
        submission, catalog, queue = self._submitted(tmp_path, cells=1)
        try:
            queue.claim("w1", lease_ttl=60)
            queue.release(Job(run_id=submission.run_id, cell_index=0,
                              payload={}, attempts=1), "imposter",
                          error="not mine")
            assert queue.counts(submission.run_id) == {"leased": 1}
            events = [e["event"] for e in
                      queue.lease_events(submission.run_id)]
            assert events == ["claimed"]
        finally:
            catalog.close()

    def test_double_complete_applies_once(self, tmp_path):
        submission, catalog, queue = self._submitted(tmp_path, cells=1)
        try:
            job = queue.claim("w1")
            assert queue.complete(job, "w1") is True
            assert queue.complete(job, "w1") is False
            events = [e["event"] for e in
                      queue.lease_events(submission.run_id)]
            assert events == ["claimed", "completed"]
        finally:
            catalog.close()

    def test_lost_ownership_heartbeat_and_complete_rejected(self, tmp_path):
        submission, catalog, queue = self._submitted(tmp_path, cells=1)
        try:
            stale = queue.claim("loser", lease_ttl=-1)  # born expired
            reclaimed = queue.claim("winner", lease_ttl=60)
            assert reclaimed.reclaimed_from == "loser"
            assert queue.owns(stale, "loser") is False
            assert queue.heartbeat(stale, "loser") is False
            assert queue.complete(stale, "loser") is False
            assert queue.complete(reclaimed, "winner") is True
            events = [e["event"] for e in
                      queue.lease_events(submission.run_id)]
            assert events == ["claimed", "reclaimed", "completed"]
        finally:
            catalog.close()


# --------------------------------------------------------------------------
class TestWorkerDrain:
    def test_single_worker_drains_and_finalizes(self, tmp_path):
        root = tmp_path / "runs"
        submission = submit_campaign("table1", scale="smoke", root=root)
        summary = work(root=root, worker_id="w1")
        assert summary.completed == submission.cells
        assert (submission.out_dir / "results.json").exists()

    def test_two_workers_bit_identical_to_serial(self, tmp_path):
        spec = chaos_spec(*({"mode": "ok", "name": f"c{i}", "offset": i}
                            for i in range(6)))
        serial_root = tmp_path / "serial"
        queue_root = tmp_path / "queued"
        repro.run(spec, seed=3, root=serial_root)
        submission = submit_campaign(spec, seed=3, root=queue_root)

        summaries = [None, None]

        def drain(slot: int) -> None:
            summaries[slot] = work(root=queue_root,
                                   worker_id=f"w{slot}", poll_seconds=0.05)

        threads = [threading.Thread(target=drain, args=(slot,))
                   for slot in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert all(s is not None for s in summaries)
        assert sum(s.completed for s in summaries) == submission.cells
        serial_results = (serial_root / "chaos-smoke-seed3"
                          / "results.json").read_bytes()
        queued_results = (submission.out_dir / "results.json").read_bytes()
        assert queued_results == serial_results

    def test_failed_cell_exhausts_queue_budget(self, tmp_path):
        spec = chaos_spec({"mode": "fail", "name": "a"})
        root = tmp_path / "runs"
        submit_campaign(spec, root=root)
        summary = work(root=root, worker_id="w1", max_job_attempts=2,
                       poll_seconds=0.05)
        assert summary.failed == 1
        with Catalog(catalog_path(root)) as catalog:
            queue = JobQueue(catalog)
            assert queue.counts("chaos-smoke") == {"failed": 1}
            events = [e["event"] for e in queue.lease_events("chaos-smoke")]
        assert events == ["claimed", "released", "claimed", "failed"]

    def test_submit_is_idempotent(self, tmp_path):
        root = tmp_path / "runs"
        first = submit_campaign("table1", scale="smoke", root=root)
        again = submit_campaign("table1", scale="smoke", root=root)
        assert first.enqueued == first.cells
        assert again.enqueued == 0  # jobs already queued


# --------------------------------------------------------------------------
class TestKilledWorkerReclaim:
    def test_lease_reclaimed_after_worker_kill(self, tmp_path):
        """Kill a worker mid-cell; a second worker reclaims and finishes."""
        spec = chaos_spec({"mode": "sleep_once", "name": "a", "seconds": 60},
                          {"mode": "ok", "name": "b"})
        root = tmp_path / "runs"
        submission = submit_campaign(spec, root=root)

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", "work", "--root", str(root),
             "--worker-id", "victim", "--lease-ttl", "2"],
            env=env, cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            # Wait until the victim holds the sleeping cell's lease.
            deadline = time.perf_counter() + 30
            while time.perf_counter() < deadline:
                with Catalog(catalog_path(root)) as catalog:
                    events = JobQueue(catalog).lease_events("chaos-smoke")
                if any(e["event"] == "claimed" and e["worker"] == "victim"
                       for e in events):
                    break
                time.sleep(0.1)
            else:
                pytest.fail("victim worker never claimed a cell")
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=10)

            # Second worker: waits out the dead lease, reclaims, finishes.
            summary = work(root=root, worker_id="rescuer", lease_ttl=2,
                           poll_seconds=0.1, max_job_attempts=5)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait()
        assert summary.reclaimed >= 1
        assert (submission.out_dir / "results.json").exists()
        with Catalog(catalog_path(root)) as catalog:
            queue = JobQueue(catalog)
            events = queue.lease_events("chaos-smoke")
            assert any(e["event"] == "reclaimed"
                       and e["worker"] == "rescuer" for e in events)
            assert queue.outstanding("chaos-smoke") == 0
            assert catalog.run_info("chaos-smoke")["status"] == "complete"


# --------------------------------------------------------------------------
class TestWorkerSignals:
    """SIGTERM mid-cell: exit non-zero, lease released, job back to pending."""

    @pytest.mark.parametrize("mode", ["local", "remote"])
    def test_sigterm_releases_lease_and_exits_nonzero(self, tmp_path, mode):
        spec = chaos_spec({"mode": "sleep", "name": "a", "seconds": 60})
        root = tmp_path / "runs"
        submit_campaign(spec, root=root)

        server = None
        argv = [sys.executable, "-m", "repro", "work",
                "--run-id", "chaos-smoke", "--worker-id", "doomed"]
        if mode == "remote":
            server = make_server(root, port=0)
            threading.Thread(target=server.serve_forever,
                             daemon=True).start()
            argv += ["--root", str(tmp_path / "worker-host"), "--server",
                     f"http://127.0.0.1:{server.server_address[1]}",
                     "--client-backoff", "0.05"]
        else:
            argv += ["--root", str(root)]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        doomed = subprocess.Popen(argv, env=env, cwd=REPO_ROOT,
                                  stdout=subprocess.PIPE,
                                  stderr=subprocess.PIPE, text=True)
        try:
            deadline = time.perf_counter() + 30
            while time.perf_counter() < deadline:
                with Catalog(catalog_path(root)) as catalog:
                    events = JobQueue(catalog).lease_events("chaos-smoke")
                if any(e["event"] == "claimed" for e in events):
                    break
                time.sleep(0.1)
            else:
                pytest.fail("worker never claimed the sleeping cell")
            time.sleep(0.3)  # let it get into the cell body
            doomed.send_signal(signal.SIGTERM)
            stdout, _stderr = doomed.communicate(timeout=30)
        finally:
            if doomed.poll() is None:
                doomed.kill()
                doomed.wait()
            if server is not None:
                server.shutdown()
                server.server_close()
        assert doomed.returncode == 3
        summary = json.loads(stdout)
        assert summary["interrupted"] is True
        assert summary["released"] == 1
        with Catalog(catalog_path(root)) as catalog:
            queue = JobQueue(catalog)
            events = queue.lease_events("chaos-smoke")
            assert [e["event"] for e in events
                    if e["event"] != "heartbeat"] == ["claimed", "released"]
            state = catalog.conn.scalar(
                "SELECT state FROM jobs WHERE run_id = 'chaos-smoke'")
        assert state == "pending"  # immediately reclaimable, no TTL wait


# --------------------------------------------------------------------------
class TestQuery:
    def test_aggregate_matches_results_json(self, tmp_path):
        root = tmp_path / "runs"
        campaign = repro.run("table1", scale="smoke", root=root)
        results = json.loads(
            (campaign.out_dir / "results.json").read_text())
        expected = sum(r["accuracy"] for r in results["rows"]) / len(
            results["rows"])
        with Catalog(catalog_path(root)) as catalog:
            by_run = aggregate_metric(catalog, "accuracy", by="run")
        assert len(by_run) == 1
        assert by_run[0]["group"] == "table1-smoke"
        assert by_run[0]["n"] == len(results["rows"])
        assert by_run[0]["mean"] == pytest.approx(expected)

    def test_group_by_param_across_runs(self, tmp_path):
        root = tmp_path / "runs"
        spec_a = chaos_spec({"mode": "ok", "name": "x", "offset": 1},
                            {"mode": "ok", "name": "y", "offset": 5})
        repro.run(spec_a, seed=0, root=root)
        repro.run(spec_a, seed=10, root=root)
        with Catalog(catalog_path(root)) as catalog:
            rows = aggregate_metric(catalog, "value", by="name")
        by_group = {r["group"]: r for r in rows}
        assert by_group["x"]["n"] == 2
        assert by_group["x"]["mean"] == pytest.approx((1 + 11) / 2)
        assert by_group["y"]["mean"] == pytest.approx((5 + 15) / 2)

    def test_format_rows_csv_and_json(self):
        rows = [{"group": "a", "n": 1, "mean": 0.5, "min": 0.5, "max": 0.5}]
        csv_text = format_rows(rows, "csv")
        assert csv_text.splitlines()[0] == "group,n,mean,min,max"
        assert json.loads(format_rows(rows, "json")) == rows
        with pytest.raises(ValueError):
            format_rows(rows, "yaml")


# --------------------------------------------------------------------------
class TestIngest:
    def test_backfills_legacy_tree(self, tmp_path):
        root = tmp_path / "runs"
        campaign = repro.run("table1", scale="smoke", root=root,
                             catalog=False)
        assert not catalog_path(root).exists()
        summary = ingest(root=root)
        assert summary["runs"] == 1
        assert summary["cells"] == len(campaign.rows)
        with Catalog(catalog_path(root)) as catalog:
            info = catalog.run_info("table1-smoke")
            assert info["status"] == "complete"
            assert info["provenance"]["ingested_from"] == str(campaign.out_dir)
            assert dump_json(catalog.rows("table1-smoke")) == dump_json(
                campaign.rows)

    def test_reingest_is_idempotent(self, tmp_path):
        root = tmp_path / "runs"
        repro.run("table1", scale="smoke", root=root, catalog=False)
        ingest(root=root)
        ingest(root=root)
        with Catalog(catalog_path(root)) as catalog:
            assert catalog.conn.scalar("SELECT COUNT(*) FROM runs") == 1
            assert catalog.conn.scalar(
                "SELECT COUNT(*) FROM cells WHERE run_id = 'table1-smoke'"
                " AND status = 'completed'") == 4

    def test_bench_file_roundtrip_and_replacement(self, tmp_path):
        bench = tmp_path / "BENCH_t.json"
        bench.write_text(json.dumps({"entries": [{
            "benchmark": "env_throughput", "scenario": "s",
            "timestamp": "2026-01-01T00:00:00",
            "results": [{"workload": "replay", "num_envs": 32,
                         "soa_steps_per_second": 100.0, "speedup": 2.5}],
            "headline_speedup": 2.5,
        }]}))
        with Catalog(tmp_path / "catalog.sqlite") as catalog:
            first = ingest_bench_file(catalog, bench)
            again = ingest_bench_file(catalog, bench)
            assert first == again
            total = catalog.conn.scalar("SELECT COUNT(*) FROM bench")
            assert total == first  # replaced, not appended
            rows = aggregate_bench(catalog, "speedup", by="num_envs")
            assert rows == [{"group": "32", "n": 1, "mean": 2.5,
                             "min": 2.5, "max": 2.5}]

    def test_record_bench_entry_appends(self, tmp_path):
        entry = {"benchmark": "train_throughput",
                 "results": [{"mode": "fast", "dtype": "float32",
                              "updates_per_second": 10.0}],
                 "speedups": {"updates_fast_vs_graph": 3.0}}
        with Catalog(tmp_path / "catalog.sqlite") as catalog:
            record_bench_entry(catalog, entry, "live")
            record_bench_entry(catalog, entry, "live")
            assert catalog.conn.scalar(
                "SELECT COUNT(*) FROM bench WHERE key ="
                " 'speedups.updates_fast_vs_graph'") == 2

    def test_checked_in_bench_files_ingest(self, tmp_path):
        """The repo's own BENCH_*.json trajectories must flatten cleanly."""
        with Catalog(tmp_path / "catalog.sqlite") as catalog:
            rows = 0
            for name in ("BENCH_throughput.json", "BENCH_train.json"):
                rows += ingest_bench_file(catalog, REPO_ROOT / name)
            assert rows > 0
            speedups = aggregate_bench(catalog, "speedup", by="num_envs",
                                       benchmark="env_throughput")
        assert speedups, "env_throughput speedup rows must survive ingest"


# --------------------------------------------------------------------------
@pytest.fixture
def server_root(tmp_path):
    root = tmp_path / "runs"
    repro.run("table1", scale="smoke", root=root)
    server = make_server(root, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield root, server.server_address[1]
    finally:
        server.shutdown()
        server.server_close()


def _get(port: int, path: str):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as response:
        return json.loads(response.read())


class TestServer:
    def test_health_and_listing(self, server_root):
        root, port = server_root
        assert _get(port, "/api/health")["ok"] is True
        campaigns = _get(port, "/api/campaigns")["campaigns"]
        assert [c["run_id"] for c in campaigns] == ["table1-smoke"]
        assert "table1" in _get(port, "/api/experiments")["experiments"]

    def test_campaign_detail_rows_and_query(self, server_root):
        root, port = server_root
        detail = _get(port, "/api/campaigns/table1-smoke")
        assert detail["status"] == "complete"
        assert detail["provenance"]["spec_hash"]
        rows = _get(port, "/api/campaigns/table1-smoke/rows")["rows"]
        assert len(rows) == 4
        query = _get(port, "/api/query?metric=accuracy&by=attack_category")
        assert len(query["rows"]) == 4

    def test_unknown_routes_and_campaigns_404(self, server_root):
        root, port = server_root
        for path in ("/api/campaigns/nope", "/nothing/here"):
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(port, path)
            assert err.value.code == 404

    def test_submit_then_drain_then_stream(self, server_root):
        root, port = server_root
        body = json.dumps({"experiment": "fig4", "scale": "smoke"}).encode()
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/api/campaigns", data=body,
            method="POST")
        with urllib.request.urlopen(request) as response:
            assert response.status == 201
            submitted = json.loads(response.read())["submitted"]
        assert submitted["run_id"] == "fig4-smoke"
        summary = work(root=root, run_id="fig4-smoke", worker_id="w1")
        assert summary.completed == submitted["cells"]
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/api/campaigns/fig4-smoke/stream"
                "?timeout=10") as response:
            events = [json.loads(line) for line in response.read().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "snapshot"
        assert kinds[-1] == "run"
        assert kinds.count("cell") == submitted["cells"]

    def test_bad_submit_rejected(self, server_root):
        root, port = server_root
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/api/campaigns", data=b"not json",
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 400

    def test_health_reports_version_and_uptime(self, server_root):
        root, port = server_root
        health = _get(port, "/api/health")
        assert health["schema_version"] == 3
        assert health["started_unix"] > 1_700_000_000
        assert health["uptime_seconds"] >= 0.0
        assert health["code_version"]
        assert "queue_depth" in health

    def test_telemetry_report_read_and_roster(self, server_root):
        from repro.store.client import StoreClient

        root, port = server_root
        client = StoreClient(f"http://127.0.0.1:{port}", worker_id="wtel")
        recorded = client.post_telemetry(
            "wtel",
            [{"name": "worker.cells.completed", "kind": "counter",
              "value": 3.0}],
            spans=[{"name": "runner.cell", "seconds": 0.25,
                    "labels": {"cell": 0}}],
            host="testhost", pid=os.getpid())
        assert recorded["recorded"] == {"points": 1, "spans": 1}
        read = _get(port, "/api/telemetry?name=worker.cells.completed")
        assert read["points"][0]["worker"] == "wtel"
        assert read["points"][0]["value"] == 3.0
        totals = {t["name"]: t["total"] for t in read["totals"]}
        assert totals["worker.cells.completed"] == 3.0
        roster = _get(port, "/api/workers")["workers"]
        entry = next(w for w in roster if w["worker"] == "wtel")
        assert entry["alive"] is True
        assert entry["pid"] == os.getpid()

    def test_follow_campaign_survives_restart(self, tmp_path):
        """The ``repro top`` stream consumer resumes across a server restart.

        A campaign is half-drained, the server shuts down mid-stream (the
        follower sees the ``shutdown`` event), a new server binds the same
        port, and the drain finishes — the follower must yield every cell
        exactly once plus the terminal run event.
        """
        from repro.store.client import StoreClient

        spec = chaos_spec(*({"mode": "ok", "name": f"c{i}"}
                            for i in range(3)))
        root = tmp_path / "runs"
        submission = submit_campaign(spec, root=root)
        server = make_server(root, port=0)
        port = server.server_address[1]
        threading.Thread(target=server.serve_forever, daemon=True).start()

        client = StoreClient(f"http://127.0.0.1:{port}", worker_id="follower",
                             timeout=5.0, max_retries=8, backoff=0.05)
        events = []
        done = threading.Event()

        def follow():
            try:
                for event in client.follow_campaign(submission.run_id,
                                                    poll_timeout=2.0):
                    events.append(event)
            finally:
                done.set()

        follower = threading.Thread(target=follow, daemon=True)
        follower.start()
        work(root=root, run_id=submission.run_id, worker_id="w1", max_cells=1)
        deadline = time.perf_counter() + 10
        while time.perf_counter() < deadline and not any(
                e["event"] == "cell" for e in events):
            time.sleep(0.05)
        server.shutdown()
        server.server_close()
        deadline = time.perf_counter() + 10
        while time.perf_counter() < deadline and not any(
                e["event"] == "shutdown" for e in events):
            time.sleep(0.05)
        assert any(e["event"] == "shutdown" for e in events)

        server = make_server(root, port=port)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            work(root=root, run_id=submission.run_id, worker_id="w2")
            assert done.wait(timeout=20), f"follower never finished: {events}"
        finally:
            server.shutdown()
            server.server_close()
        cells = [e for e in events if e["event"] == "cell"]
        assert sorted(c["index"] for c in cells) == [0, 1, 2]
        assert len(cells) == 3  # dedup across reconnects: each cell once
        assert [e for e in events if e["event"] == "snapshot"] == events[:1]
        assert events[-1]["event"] == "run"
        assert events[-1]["status"] == "complete"


# --------------------------------------------------------------------------
class TestCLI:
    def test_status_prefers_catalogue(self, tmp_path, capsys):
        root = tmp_path / "runs"
        repro.run("table1", scale="smoke", root=root)
        assert cli_main(["status", "--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "table1-smoke" in out and "catalogue" in out
        assert cli_main(["status", "--root", str(root), "--no-catalog"]) == 0
        out = capsys.readouterr().out
        assert "table1-smoke" in out and "catalogue" not in out

    def test_query_and_list_keys(self, tmp_path, capsys):
        root = tmp_path / "runs"
        repro.run("table1", scale="smoke", root=root)
        assert cli_main(["query", "accuracy", "--by", "attack_category",
                         "--root", str(root), "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("group,n,mean,min,max")
        assert cli_main(["query", "--list-keys", "--root", str(root)]) == 0
        assert "accuracy" in capsys.readouterr().out

    def test_query_without_catalog_fails_cleanly(self, tmp_path, capsys):
        assert cli_main(["query", "accuracy",
                         "--root", str(tmp_path / "nope")]) == 1

    def test_submit_work_roundtrip(self, tmp_path, capsys):
        root = tmp_path / "runs"
        assert cli_main(["submit", "table1", "--scale", "smoke",
                         "--root", str(root)]) == 0
        assert "4 job(s)" in capsys.readouterr().out
        assert cli_main(["work", "--root", str(root)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["completed"] == 4
        assert (root / "table1-smoke" / "results.json").exists()

    def test_store_ingest(self, tmp_path, capsys):
        root = tmp_path / "runs"
        repro.run("table1", scale="smoke", root=root, catalog=False)
        assert cli_main(["store", "ingest", "--root", str(root)]) == 0
        assert "1 run(s)" in capsys.readouterr().out

    def test_status_watch_reprints_until_interrupted(self, tmp_path,
                                                     capsys, monkeypatch):
        root = tmp_path / "runs"
        repro.run("table1", scale="smoke", root=root)
        ticks = iter([None, None])

        def fake_sleep(seconds):
            assert seconds == 1.0
            if next(ticks, "done") == "done":
                raise KeyboardInterrupt

        monkeypatch.setattr(time, "sleep", fake_sleep)
        assert cli_main(["status", "--root", str(root), "--watch", "1"]) == 0
        out = capsys.readouterr().out
        assert out.count("table1-smoke") == 3  # one table per tick
        assert "refreshing every 1s" in out

    def test_status_shows_workers_column_while_draining(self, tmp_path,
                                                        capsys):
        spec = chaos_spec({"mode": "ok", "name": "a"},
                          {"mode": "ok", "name": "b"})
        root = tmp_path / "runs"
        submission = submit_campaign(spec, root=root)

        def header(text):
            return next(l for l in text.splitlines()
                        if l.startswith("campaign"))

        assert cli_main(["status", "--root", str(root)]) == 0
        assert "workers" not in header(capsys.readouterr().out)  # none leased
        with Catalog(catalog_path(root)) as catalog:
            JobQueue(catalog).claim("w1")
            assert cli_main(["status", "--root", str(root)]) == 0
            out = capsys.readouterr().out
        assert "workers" in header(out)
        line = next(l for l in out.splitlines()
                    if l.startswith(submission.run_id))
        assert " 1 " in line  # one distinct worker holds a lease

    def test_top_once_local_and_server(self, tmp_path, capsys):
        root = tmp_path / "runs"
        repro.run("table1", scale="smoke", root=root)
        assert cli_main(["top", "--root", str(root), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out and "table1-smoke" in out
        assert "[" in out and "4/4" in out  # the progress bar

        server = make_server(root, port=0)
        port = server.server_address[1]
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            assert cli_main(["top", "--server",
                             f"http://127.0.0.1:{port}", "--once"]) == 0
        finally:
            server.shutdown()
            server.server_close()
        out = capsys.readouterr().out
        assert "table1-smoke" in out and "schema=v3" in out

    def test_top_without_catalog_reports_error_frame(self, tmp_path, capsys):
        assert cli_main(["top", "--root", str(tmp_path / "nope"),
                         "--once"]) == 0
        assert "no catalogue" in capsys.readouterr().out
