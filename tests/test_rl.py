"""Tests for the RL engine: GAE, buffer, policy, PPO updates, vec env, replay."""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.env.config import EnvConfig
from repro.env.guessing_game import CacheGuessingGameEnv
from repro.rl import (
    ActorCriticPolicy,
    GreedyOneStepBaseline,
    PPOConfig,
    PPOTrainer,
    PPOUpdater,
    RandomSearchBaseline,
    RolloutBuffer,
    RunningStats,
    VecEnv,
    compute_gae,
    evaluate_policy,
    extract_attack_sequence,
)
from repro.rl.stats import TrainingHistory
from repro.rl.trainer import STEPS_PER_EPOCH


def tiny_env_factory(seed: int) -> CacheGuessingGameEnv:
    config = EnvConfig(cache=CacheConfig.direct_mapped(2), attacker_addr_s=2, attacker_addr_e=3,
                       victim_addr_s=0, victim_addr_e=1, victim_no_access_enable=False,
                       window_size=8, max_steps=8, warmup_accesses=0, seed=seed)
    return CacheGuessingGameEnv(config)


class TestGAE:
    def test_single_step_terminal(self):
        advantages, returns = compute_gae(
            rewards=np.array([[1.0]]), values=np.array([[0.5]]),
            dones=np.array([[1.0]]), last_values=np.array([9.0]),
            gamma=0.9, lam=0.95)
        # Terminal step: no bootstrapping from last_values.
        assert np.isclose(advantages[0, 0], 0.5)
        assert np.isclose(returns[0, 0], 1.0)

    def test_bootstraps_when_not_done(self):
        advantages, _ = compute_gae(
            rewards=np.array([[0.0]]), values=np.array([[0.0]]),
            dones=np.array([[0.0]]), last_values=np.array([1.0]),
            gamma=0.5, lam=1.0)
        assert np.isclose(advantages[0, 0], 0.5)

    def test_matches_manual_two_step_computation(self):
        gamma, lam = 0.9, 0.8
        rewards = np.array([[1.0], [2.0]])
        values = np.array([[0.3], [0.6]])
        dones = np.array([[0.0], [0.0]])
        last_values = np.array([0.9])
        delta1 = 2.0 + gamma * 0.9 - 0.6
        delta0 = 1.0 + gamma * 0.6 - 0.3
        expected_adv1 = delta1
        expected_adv0 = delta0 + gamma * lam * delta1
        advantages, returns = compute_gae(rewards, values, dones, last_values, gamma, lam)
        assert np.isclose(advantages[1, 0], expected_adv1)
        assert np.isclose(advantages[0, 0], expected_adv0)
        assert np.allclose(returns, advantages + values)

    def test_done_blocks_credit_flow(self):
        rewards = np.array([[0.0], [10.0]])
        values = np.zeros((2, 1))
        dones = np.array([[1.0], [0.0]])
        advantages, _ = compute_gae(rewards, values, dones, np.array([0.0]), 0.99, 0.95)
        assert np.isclose(advantages[0, 0], 0.0)

    def test_multi_env_shapes(self):
        advantages, returns = compute_gae(
            rewards=np.zeros((5, 3)), values=np.zeros((5, 3)),
            dones=np.zeros((5, 3)), last_values=np.zeros(3))
        assert advantages.shape == (5, 3)
        assert returns.shape == (5, 3)


class TestRolloutBuffer:
    def _filled_buffer(self, horizon=4, num_envs=2, obs=3):
        buffer = RolloutBuffer(horizon, num_envs, obs)
        rng = np.random.default_rng(0)
        for _ in range(horizon):
            buffer.add(rng.standard_normal((num_envs, obs)),
                       rng.integers(0, 2, num_envs), rng.standard_normal(num_envs),
                       np.zeros(num_envs), rng.standard_normal(num_envs),
                       rng.standard_normal(num_envs))
        return buffer

    def test_fills_and_finalizes(self):
        buffer = self._filled_buffer()
        assert buffer.full
        buffer.finalize(np.zeros(2), gamma=0.99, lam=0.95)
        assert buffer.advantages.shape == (4, 2)

    def test_overfill_rejected(self):
        buffer = self._filled_buffer()
        with pytest.raises(RuntimeError):
            buffer.add(np.zeros((2, 3)), np.zeros(2), np.zeros(2), np.zeros(2),
                       np.zeros(2), np.zeros(2))

    def test_finalize_requires_full(self):
        buffer = RolloutBuffer(4, 2, 3)
        with pytest.raises(RuntimeError):
            buffer.finalize(np.zeros(2), 0.99, 0.95)

    def test_minibatches_cover_all_transitions(self):
        buffer = self._filled_buffer(horizon=6, num_envs=2)
        buffer.finalize(np.zeros(2), 0.99, 0.95)
        batches = list(buffer.iter_minibatches(batch_size=4, rng=np.random.default_rng(0)))
        assert sum(len(batch.actions) for batch in batches) == 12

    def test_minibatches_require_finalize(self):
        buffer = self._filled_buffer()
        with pytest.raises(RuntimeError):
            next(buffer.iter_minibatches(4))

    def test_advantage_normalization(self):
        buffer = self._filled_buffer(horizon=8, num_envs=2)
        buffer.finalize(np.zeros(2), 0.99, 0.95)
        batch = next(buffer.iter_minibatches(batch_size=16, rng=np.random.default_rng(0)))
        assert abs(batch.advantages.mean()) < 0.2


class TestPolicy:
    def test_act_shapes(self, rng):
        policy = ActorCriticPolicy(10, 5, hidden_sizes=(16, 16), rng=rng)
        output = policy.act(rng.standard_normal((4, 10)), rng=rng)
        assert output.actions.shape == (4,)
        assert output.log_probs.shape == (4,)
        assert output.values.shape == (4,)
        assert np.all(output.actions >= 0) and np.all(output.actions < 5)

    def test_deterministic_act_is_repeatable(self, rng):
        policy = ActorCriticPolicy(6, 3, hidden_sizes=(8,), rng=rng)
        observation = rng.standard_normal((1, 6))
        a = policy.act(observation, deterministic=True).actions
        b = policy.act(observation, deterministic=True).actions
        assert np.array_equal(a, b)

    def test_action_probabilities_sum_to_one(self, rng):
        policy = ActorCriticPolicy(6, 4, hidden_sizes=(8,), rng=rng)
        probabilities = policy.action_probabilities(rng.standard_normal(6))
        assert np.isclose(probabilities.sum(), 1.0)

    def test_attention_backbone(self, rng):
        policy = ActorCriticPolicy(12, 3, hidden_sizes=(16,), backbone="attention",
                                   window_shape=(3, 4), rng=rng)
        output = policy.act(rng.standard_normal((2, 12)), rng=rng)
        assert output.actions.shape == (2,)

    def test_attention_requires_window_shape(self):
        with pytest.raises(ValueError):
            ActorCriticPolicy(12, 3, backbone="attention")

    def test_unknown_backbone_rejected(self):
        with pytest.raises(ValueError):
            ActorCriticPolicy(12, 3, backbone="cnn")

    def test_value_output(self, rng):
        policy = ActorCriticPolicy(5, 2, hidden_sizes=(8,), rng=rng)
        values = policy.value(rng.standard_normal((3, 5)))
        assert values.shape == (3,)


class TestPPOUpdater:
    def test_update_runs_and_reports_metrics(self, rng):
        policy = ActorCriticPolicy(6, 3, hidden_sizes=(16,), rng=rng)
        config = PPOConfig(horizon=8, num_envs=2, minibatch_size=8, update_epochs=2)
        updater = PPOUpdater(policy, config, rng=rng)
        buffer = RolloutBuffer(8, 2, 6)
        for _ in range(8):
            observations = rng.standard_normal((2, 6))
            output = policy.act(observations, rng=rng)
            buffer.add(observations, output.actions, rng.standard_normal(2),
                       np.zeros(2), output.values, output.log_probs)
        buffer.finalize(np.zeros(2), 0.99, 0.95)
        metrics = updater.update(buffer)
        for key in ("policy_loss", "value_loss", "entropy", "clip_fraction", "approx_kl"):
            assert key in metrics

    def test_update_changes_parameters(self, rng):
        policy = ActorCriticPolicy(6, 3, hidden_sizes=(16,), rng=rng)
        before = {name: array.copy() for name, array in policy.state_dict().items()}
        config = PPOConfig(horizon=8, num_envs=2, minibatch_size=16, update_epochs=2,
                           learning_rate=1e-2)
        updater = PPOUpdater(policy, config, rng=rng)
        buffer = RolloutBuffer(8, 2, 6)
        for _ in range(8):
            observations = rng.standard_normal((2, 6))
            output = policy.act(observations, rng=rng)
            buffer.add(observations, output.actions, np.ones(2), np.zeros(2),
                       output.values, output.log_probs)
        buffer.finalize(np.zeros(2), 0.99, 0.95)
        updater.update(buffer)
        after = policy.state_dict()
        assert any(not np.allclose(before[name], after[name]) for name in before)

    def test_entropy_annealing(self, rng):
        policy = ActorCriticPolicy(4, 2, hidden_sizes=(8,), rng=rng)
        config = PPOConfig(entropy_coefficient=0.1, entropy_coefficient_final=0.0)
        updater = PPOUpdater(policy, config, rng=rng)
        updater.set_progress(0.5)
        assert np.isclose(updater.entropy_coefficient, 0.05)
        updater.set_progress(2.0)
        assert np.isclose(updater.entropy_coefficient, 0.0)

    def test_no_annealing_without_final_value(self, rng):
        policy = ActorCriticPolicy(4, 2, hidden_sizes=(8,), rng=rng)
        updater = PPOUpdater(policy, PPOConfig(entropy_coefficient=0.07), rng=rng)
        updater.set_progress(0.9)
        assert updater.entropy_coefficient == 0.07


class TestVecEnv:
    def test_reset_and_step_shapes(self):
        vec = VecEnv(tiny_env_factory, num_envs=3)
        observations = vec.reset()
        assert observations.shape == (3, vec.observation_size)
        next_observations, rewards, dones, infos = vec.step(np.zeros(3, dtype=int))
        assert next_observations.shape == (3, vec.observation_size)
        assert rewards.shape == (3,)
        assert dones.shape == (3,)
        assert len(infos) == 3

    def test_auto_reset_reports_episode(self):
        vec = VecEnv(tiny_env_factory, num_envs=1)
        vec.reset()
        guess_index = vec.single_env.actions.guess_index_for_secret(0)
        _, _, dones, infos = vec.step(np.array([guess_index]))
        assert dones[0] == 1.0
        assert "episode" in infos[0]
        assert infos[0]["episode"]["length"] == 1

    def test_requires_positive_env_count(self):
        with pytest.raises(ValueError):
            VecEnv(tiny_env_factory, num_envs=0)


class TestStats:
    def test_running_stats(self):
        stats = RunningStats(window=3)
        stats.extend([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 3
        assert np.isclose(stats.mean, 3.0)
        assert stats.last == 4.0

    def test_empty_stats(self):
        stats = RunningStats()
        assert stats.mean == 0.0 and stats.std == 0.0 and stats.last is None

    def test_training_history(self):
        history = TrainingHistory()
        history.record({"update": 1, "loss": 0.5})
        history.record({"update": 2, "loss": 0.25})
        assert history.series("loss") == [0.5, 0.25]
        assert history.last("loss") == 0.25
        assert history.last("missing", default=-1.0) == -1.0


class TestReplayAndEvaluation:
    def test_evaluate_policy_returns_metrics(self, rng):
        env = tiny_env_factory(0)
        policy = ActorCriticPolicy(env.observation_size, env.action_space.n,
                                   hidden_sizes=(16,), rng=rng)
        metrics = evaluate_policy(env, policy, episodes=5, seed=0)
        assert set(metrics) == {"accuracy", "guess_rate", "mean_episode_length",
                                "mean_episode_reward"}
        assert 0.0 <= metrics["accuracy"] <= 1.0

    def test_extract_attack_sequence_covers_all_secrets(self, rng):
        env = tiny_env_factory(0)
        policy = ActorCriticPolicy(env.observation_size, env.action_space.n,
                                   hidden_sizes=(16,), rng=rng)
        extraction = extract_attack_sequence(env, policy, seed=0)
        assert set(extraction.sequences) == {0, 1}
        assert extraction.render(0)

    def test_trainer_epoch_accounting(self):
        trainer = PPOTrainer(tiny_env_factory,
                             PPOConfig(horizon=16, num_envs=2, minibatch_size=16,
                                       update_epochs=1),
                             hidden_sizes=(16,), seed=0)
        result = trainer.train(max_updates=2, eval_every=2, eval_episodes=4)
        assert result.env_steps == 2 * 16 * 2
        assert np.isclose(result.epochs_trained, result.env_steps / STEPS_PER_EPOCH)
        assert result.updates == 2


class TestSearchBaselines:
    def _config(self):
        return EnvConfig(cache=CacheConfig.direct_mapped(2), attacker_addr_s=2,
                         attacker_addr_e=3, victim_addr_s=0, victim_addr_e=1,
                         victim_no_access_enable=False, window_size=8,
                         warmup_accesses=0, seed=0)

    def test_random_search_finds_attack_on_tiny_config(self):
        result = RandomSearchBaseline(self._config(), seed=0).search(max_sequences=300)
        assert result.found
        assert result.accuracy >= 0.95
        assert result.env_steps > 0

    def test_random_search_reports_failure(self):
        result = RandomSearchBaseline(self._config(), seed=0).search(max_sequences=1,
                                                                     max_length=2)
        assert result.sequences_tried == 1

    def test_greedy_baseline_reports_its_limits(self):
        # Greedy one-step search has no learning: a single added action never
        # improves the distinguishing accuracy until the whole prime/trigger/
        # probe pattern is in place, so it typically plateaus at chance level.
        # This is exactly the paper's argument for RL over fixed heuristics.
        result = GreedyOneStepBaseline(self._config(), seed=0).search(max_length=6)
        assert result.sequence is not None
        assert 0.5 <= result.accuracy <= 1.0
        assert result.env_steps > 0
