"""Tests for the remote-worker transport: StoreClient, chaos, lease HTTP.

Unit tests drive :class:`~repro.store.client.StoreClient` against a fake
in-memory transport (taxonomy, deterministic backoff, idempotency keys,
ChaosTransport semantics); the live tests run a real
:class:`~repro.store.server.CampaignServer` and prove the acceptance
criterion — a chaos-perturbed multi-worker HTTP drain, including a
mid-drain server kill + restart, yields rows bit-identical to serial
``repro.run()`` with exactly one applied completion per cell.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.runs import ExperimentSpec
from repro.runs.cli import main as cli_main
from repro.runs.faults import NetworkChaosPlan, NetworkFault
from repro.store import Catalog, JobQueue, catalog_path
from repro.store.chaos import ChaosProxy
from repro.store.client import (
    BACKOFF_CAP_SECONDS,
    ChaosTransport,
    FatalRequestError,
    RetryableTransportError,
    StoreClient,
    backoff_schedule,
)
from repro.store.server import make_server
from repro.store.worker import submit_campaign, work

REPO_ROOT = Path(__file__).resolve().parents[1]


def chaos_spec(*cells: dict) -> ExperimentSpec:
    return ExperimentSpec(experiment_id="chaos", driver="chaos_driver",
                          columns=("name", "value"), grid=cells,
                          default_scale="smoke")


def ok_cells(n: int):
    return tuple({"mode": "ok", "name": f"c{i}", "offset": i}
                 for i in range(n))


class FakeTransport:
    """Scripted transport: pops ``(status, body)`` or raises an exception."""

    def __init__(self, *script):
        self.script = list(script)
        self.requests = []

    def __call__(self, method, url, body, headers, timeout):
        self.requests.append({"method": method, "url": url, "body": body,
                              "timeout": timeout})
        step = self.script.pop(0)
        if isinstance(step, BaseException):
            raise step
        return step


def client_with(transport, **kwargs):
    kwargs.setdefault("backoff", 0.0)
    return StoreClient("http://fake", worker_id="w1", transport=transport,
                       sleep=lambda _s: None, **kwargs)


# --------------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_4xx_is_fatal_and_never_retried(self):
        transport = FakeTransport((404, b'{"error": "nope"}'))
        client = client_with(transport, max_retries=5)
        with pytest.raises(FatalRequestError) as err:
            client.get("/api/campaigns/nope")
        assert err.value.status == 404
        assert len(transport.requests) == 1

    def test_5xx_retried_until_budget_exhausted(self):
        transport = FakeTransport(*[(503, b"busy")] * 3)
        client = client_with(transport, max_retries=2)
        with pytest.raises(RetryableTransportError) as err:
            client.health()
        assert err.value.status == 503
        assert err.value.attempts == 3
        assert len(transport.requests) == 3

    def test_connection_errors_retried_then_succeed(self):
        transport = FakeTransport(ConnectionResetError("rst"),
                                  TimeoutError("deadline"),
                                  (200, b'{"ok": true}'))
        client = client_with(transport, max_retries=4)
        assert client.health() == {"ok": True}
        assert len(transport.requests) == 3

    def test_torn_2xx_body_is_retryable(self):
        transport = FakeTransport((200, b'{"ok": tr'),  # torn mid-flight
                                  (200, b'{"ok": true}'))
        client = client_with(transport, max_retries=1)
        assert client.health() == {"ok": True}

    def test_every_request_carries_the_deadline(self):
        transport = FakeTransport((200, b"{}"), (200, b"{}"))
        client = client_with(transport, timeout=7.5)
        client.get("/api/health")
        client.request("GET", "/api/health", timeout=1.25)
        assert [r["timeout"] for r in transport.requests] == [7.5, 1.25]


class TestDeterministicBackoff:
    def test_schedule_is_deterministic_and_capped(self):
        first = backoff_schedule(0.25, 8, seed=42)
        again = backoff_schedule(0.25, 8, seed=42)
        other = backoff_schedule(0.25, 8, seed=43)
        assert first == again
        assert first != other
        assert all(d <= BACKOFF_CAP_SECONDS * 1.25 for d in first)
        # Exponential growth up to the cap, jitter never negative.
        assert first[0] >= 0.25 and first[1] >= 0.5 and first[2] >= 1.0

    def test_client_sleeps_the_schedule(self):
        slept = []
        transport = FakeTransport(*[(500, b"x")] * 4)
        client = StoreClient("http://fake", worker_id="w1",
                             transport=transport, max_retries=3,
                             backoff=0.25, retry_seed=7,
                             sleep=slept.append)
        with pytest.raises(RetryableTransportError):
            client.health()
        assert slept == backoff_schedule(0.25, 3, seed=7)


class TestIdempotencyKeys:
    def _keys_of(self, transport):
        return [json.loads(r["body"])["idempotency_key"]
                for r in transport.requests]

    def test_each_mutation_gets_a_fresh_key(self):
        transport = FakeTransport((200, b'{"job": null}'),
                                  (200, b'{"job": null}'))
        client = client_with(transport)
        client.claim()
        client.claim()
        keys = self._keys_of(transport)
        assert len(set(keys)) == 2
        assert all(key.startswith("w1.") for key in keys)

    def test_retries_reuse_the_same_key(self):
        transport = FakeTransport(ConnectionResetError("rst"), (500, b"x"),
                                  (200, b'{"applied": true}'))
        client = client_with(transport, max_retries=4)
        client.complete("run", 0, status="completed", row={"v": 1},
                        params={}, attempts=1)
        keys = self._keys_of(transport)
        assert len(keys) == 3
        assert len(set(keys)) == 1  # one logical mutation, one key

    def test_restarted_client_cannot_replay_old_keys(self):
        # Same worker_id, new process: the per-instance session token keeps
        # the key spaces disjoint, so a stale recorded response can never be
        # replayed to a new incarnation.
        t1, t2 = FakeTransport((200, b"{}")), FakeTransport((200, b"{}"))
        client_with(t1).claim()
        client_with(t2).claim()
        assert self._keys_of(t1) != self._keys_of(t2)

    def test_heartbeats_carry_no_key(self):
        transport = FakeTransport((200, b'{"alive": true}'))
        client = client_with(transport)
        assert client.heartbeat("run", 0) is True
        assert "idempotency_key" not in json.loads(
            transport.requests[0]["body"])


class TestChaosTransport:
    def _wrapped(self, plan, *script):
        inner = FakeTransport(*script)
        chaos = ChaosTransport(inner, plan, sleep=lambda _s: None)
        return inner, chaos

    def test_reset_fires_before_delivery(self):
        plan = NetworkChaosPlan(faults=(NetworkFault(kind="reset"),))
        inner, chaos = self._wrapped(plan, (200, b"{}"))
        with pytest.raises(ConnectionResetError):
            chaos("GET", "http://s/api/health", None, {}, 1.0)
        assert inner.requests == []  # request never reached the wire

    def test_http_500_is_synthetic(self):
        plan = NetworkChaosPlan(faults=(NetworkFault(kind="http-500"),))
        inner, chaos = self._wrapped(plan)
        status, _body = chaos("GET", "http://s/api/health", None, {}, 1.0)
        assert status == 500
        assert inner.requests == []

    def test_drop_response_delivers_then_raises(self):
        plan = NetworkChaosPlan(faults=(NetworkFault(kind="drop-response"),))
        inner, chaos = self._wrapped(plan, (200, b"{}"))
        with pytest.raises(ConnectionResetError):
            chaos("POST", "http://s/api/jobs/complete", b"{}", {}, 1.0)
        assert len(inner.requests) == 1  # the mutation WAS applied

    def test_duplicate_delivers_twice(self):
        plan = NetworkChaosPlan(faults=(NetworkFault(kind="duplicate"),))
        inner, chaos = self._wrapped(plan, (200, b"{}"), (200, b"{}"))
        chaos("POST", "http://s/api/jobs/complete", b"{}", {}, 1.0)
        assert len(inner.requests) == 2

    def test_op_filter_and_request_index(self):
        plan = NetworkChaosPlan(faults=(
            NetworkFault(kind="reset", at_request=1, op="claim"),))
        inner, chaos = self._wrapped(
            plan, (200, b"{}"), (200, b"{}"), (200, b"{}"))
        chaos("POST", "http://s/api/jobs/complete", b"{}", {}, 1.0)  # no match
        chaos("POST", "http://s/api/jobs/claim", b"{}", {}, 1.0)     # index 0
        with pytest.raises(ConnectionResetError):
            chaos("POST", "http://s/api/jobs/claim", b"{}", {}, 1.0)  # index 1
        assert chaos.fired == [{"kind": "reset", "path": "/api/jobs/claim"}]


# --------------------------------------------------------------------------
@pytest.fixture
def lease_server(tmp_path):
    """A live server over a submitted 2-cell chaos campaign."""
    root = tmp_path / "server"
    submit_campaign(chaos_spec(*ok_cells(2)), root=root)
    server = make_server(root, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        yield root, server, url
    finally:
        server.shutdown()
        server.server_close()


class TestLeaseProtocolHTTP:
    def test_claim_heartbeat_complete_roundtrip(self, lease_server):
        root, server, url = lease_server
        client = StoreClient(url, worker_id="w1", backoff=0.01)
        assert client.outstanding("chaos-smoke") == 2
        job = client.claim(run_id="chaos-smoke")
        assert job["cell_index"] == 0
        assert job["payload"]["params"]["name"] == "c0"
        assert client.heartbeat("chaos-smoke", 0) is True
        response = client.complete("chaos-smoke", 0, status="completed",
                                   row={"name": "c0", "value": 1.0},
                                   params=job["payload"]["params"],
                                   attempts=1)
        assert response["applied"] is True
        assert client.outstanding("chaos-smoke") == 1
        health = client.health()
        assert health["queue_depth"] == 1
        assert health["active_leases"] == 0
        assert health["draining"] is False

    def test_duplicate_complete_replays_and_single_lease_event(
            self, lease_server):
        root, server, url = lease_server
        client = StoreClient(url, worker_id="w1", backoff=0.01)
        job = client.claim(run_id="chaos-smoke")
        body = {"worker": "w1", "run_id": "chaos-smoke",
                "cell_index": job["cell_index"], "status": "completed",
                "row": {"name": "c0", "value": 1.0},
                "params": job["payload"]["params"], "attempts": 1,
                "idempotency_key": "w1.feed.000001.complete"}
        first = client.post("/api/jobs/complete", body)
        second = client.post("/api/jobs/complete", body)  # duplicated delivery
        assert first["applied"] is True
        assert "replayed" not in first
        assert second["applied"] is True
        assert second["replayed"] is True
        with Catalog(catalog_path(root)) as catalog:
            events = JobQueue(catalog).lease_events("chaos-smoke")
        completed = [e for e in events if e["event"] == "completed"]
        assert len(completed) == 1

    def test_lost_ownership_complete_not_applied(self, lease_server):
        root, server, url = lease_server
        loser = StoreClient(url, worker_id="loser", backoff=0.01)
        job = loser.claim(run_id="chaos-smoke", lease_ttl=-1)  # born expired
        winner = StoreClient(url, worker_id="winner", backoff=0.01)
        reclaimed = winner.claim(run_id="chaos-smoke")
        assert reclaimed["reclaimed_from"] == "loser"
        assert loser.heartbeat("chaos-smoke", job["cell_index"]) is False
        late = loser.complete("chaos-smoke", job["cell_index"],
                              status="completed", row={"v": 1},
                              params={}, attempts=1)
        assert late["applied"] is False
        good = winner.complete("chaos-smoke", reclaimed["cell_index"],
                               status="completed", row={"v": 1},
                               params={}, attempts=2)
        assert good["applied"] is True

    def test_draining_server_refuses_claims_with_503(self, lease_server):
        root, server, url = lease_server
        server.draining = True  # drain announced, accept loop still up
        client = StoreClient(url, worker_id="w1", max_retries=1, backoff=0.01)
        with pytest.raises(RetryableTransportError) as err:
            client.claim(run_id="chaos-smoke")
        assert err.value.status == 503
        assert client.health()["draining"] is True

    def test_body_cap_enforced_with_413(self, lease_server):
        root, server, url = lease_server
        server.max_body_bytes = 64
        client = StoreClient(url, worker_id="w1", backoff=0.01)
        with pytest.raises(FatalRequestError) as err:
            client.post("/api/jobs/heartbeat",
                        {"worker": "w1", "run_id": "chaos-smoke",
                         "cell_index": 0, "padding": "x" * 256})
        assert err.value.status == 413

    def test_stream_observes_shutdown_promptly(self, lease_server):
        root, server, url = lease_server
        events = []

        def consume():
            with urllib.request.urlopen(
                    f"{url}/api/campaigns/chaos-smoke/stream?timeout=60"
            ) as response:
                for line in response:
                    events.append(json.loads(line))

        consumer = threading.Thread(target=consume)
        consumer.start()
        time.sleep(0.5)  # snapshot delivered, stream now long-polling
        started = time.perf_counter()
        server.initiate_drain()
        consumer.join(timeout=10)
        elapsed = time.perf_counter() - started
        assert not consumer.is_alive()
        assert events[0]["event"] == "snapshot"
        assert events[-1]["event"] == "shutdown"
        assert elapsed < 5.0  # one poll interval, not the 60s budget


# --------------------------------------------------------------------------
def _drain_remote(url, root, name, chaos_plan=None, **kwargs):
    kwargs.setdefault("client_backoff", 0.05)
    kwargs.setdefault("client_retries", 8)
    kwargs.setdefault("poll_seconds", 0.1)
    return work(root=root, run_id="chaos-smoke", worker_id=name, server=url,
                chaos_plan=chaos_plan, **kwargs)


def _assert_drained_bit_identical(serial_root, server_root, cells):
    serial = (serial_root / "chaos-smoke" / "results.json").read_bytes()
    drained = (server_root / "chaos-smoke" / "results.json").read_bytes()
    assert drained == serial
    with Catalog(catalog_path(server_root)) as catalog:
        queue = JobQueue(catalog)
        events = queue.lease_events("chaos-smoke")
        assert queue.outstanding("chaos-smoke") == 0
    completed = sorted(e["cell_index"] for e in events
                       if e["event"] == "completed")
    assert completed == list(range(cells)), \
        f"expected exactly one applied completion per cell, got {completed}"


class TestRemoteDrain:
    CELLS = 6

    def _prepared(self, tmp_path):
        spec = chaos_spec(*ok_cells(self.CELLS))
        serial_root = tmp_path / "serial"
        server_root = tmp_path / "server"
        repro.run(spec, root=serial_root)
        submit_campaign(spec, root=server_root)
        return serial_root, server_root

    def _run_workers(self, url, tmp_path, plans):
        summaries = {}

        def drain(name, plan):
            summaries[name] = _drain_remote(url, tmp_path / name, name,
                                            chaos_plan=plan)

        threads = [threading.Thread(target=drain, args=(name, plan))
                   for name, plan in plans.items()]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert all(not t.is_alive() for t in threads)
        return summaries

    def test_two_http_workers_bit_identical_under_chaos(self, tmp_path):
        serial_root, server_root = self._prepared(tmp_path)
        server = make_server(server_root, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        plan = NetworkChaosPlan(faults=(
            NetworkFault(kind="reset", at_request=1, op="claim"),
            NetworkFault(kind="http-500", at_request=2, op="claim"),
            NetworkFault(kind="stall", at_request=3, op="claim",
                         delay_seconds=0.2),
            NetworkFault(kind="drop-response", at_request=0, op="complete"),
            NetworkFault(kind="duplicate", at_request=2, op="complete"),
        ))
        try:
            summaries = self._run_workers(url, tmp_path,
                                          {"w1": plan, "w2": None})
        finally:
            server.shutdown()
            server.server_close()
        assert sum(s.completed for s in summaries.values()) >= self.CELLS
        _assert_drained_bit_identical(serial_root, server_root, self.CELLS)

    def test_mid_drain_server_kill_and_restart(self, tmp_path):
        serial_root, server_root = self._prepared(tmp_path)
        server = make_server(server_root, port=0)
        port = server.server_address[1]
        threading.Thread(target=server.serve_forever, daemon=True).start()
        url = f"http://127.0.0.1:{port}"
        chaos = NetworkChaosPlan(faults=(
            NetworkFault(kind="reset", at_request=0, op="complete"),))
        workers = threading.Thread(
            target=lambda: self._run_workers(url, tmp_path,
                                             {"w1": chaos, "w2": None}))
        workers.start()
        # Kill the server after the first completed cell, then restart it on
        # the same port; the workers' retry budgets ride out the outage.
        deadline = time.perf_counter() + 60
        while time.perf_counter() < deadline:
            with Catalog(catalog_path(server_root)) as catalog:
                done = catalog.conn.scalar(
                    "SELECT COUNT(*) FROM jobs WHERE state = 'done'")
            if done:
                break
            time.sleep(0.05)
        else:
            pytest.fail("no cell completed before the kill window")
        server.shutdown()
        server.server_close()
        time.sleep(0.25)
        restarted = make_server(server_root, port=port)
        threading.Thread(target=restarted.serve_forever, daemon=True).start()
        try:
            workers.join(timeout=120)
            assert not workers.is_alive()
        finally:
            restarted.shutdown()
            restarted.server_close()
        _assert_drained_bit_identical(serial_root, server_root, self.CELLS)

    def test_drain_through_tcp_chaos_proxy(self, tmp_path):
        serial_root, server_root = self._prepared(tmp_path)
        server = make_server(server_root, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        plan = NetworkChaosPlan(faults=(
            NetworkFault(kind="reset", at_request=0, op="claim"),
            NetworkFault(kind="duplicate", at_request=1, op="complete"),
            NetworkFault(kind="drop-response", at_request=2, op="complete"),
            NetworkFault(kind="http-500", at_request=3, op="claim"),
        ))
        proxy = ChaosProxy(("127.0.0.1", server.server_address[1]),
                           plan).start()
        url = f"http://{proxy.address[0]}:{proxy.address[1]}"
        try:
            self._run_workers(url, tmp_path, {"w1": None, "w2": None})
        finally:
            proxy.stop()
            server.shutdown()
            server.server_close()
        fired = {f["kind"] for f in proxy.fired}
        assert {"reset", "duplicate", "drop-response"} <= fired
        _assert_drained_bit_identical(serial_root, server_root, self.CELLS)


# --------------------------------------------------------------------------
class TestRemoteWorkCLI:
    def test_unreachable_server_exits_5(self, tmp_path, capsys):
        code = cli_main(["work", "--root", str(tmp_path / "runs"),
                         "--server", "http://127.0.0.1:1",
                         "--client-retries", "1",
                         "--client-backoff", "0.01"])
        assert code == 5
        assert "worker gave up" in capsys.readouterr().err

    def test_net_chaos_flag_parses_inline_plan(self, tmp_path):
        root = tmp_path / "server"
        submit_campaign(chaos_spec(*ok_cells(2)), root=root)
        server = make_server(root, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        plan = NetworkChaosPlan(faults=(
            NetworkFault(kind="http-500", at_request=0, op="claim"),))
        try:
            code = cli_main(["work", "--root", str(tmp_path / "local"),
                             "--server", url, "--run-id", "chaos-smoke",
                             "--client-backoff", "0.01", "--net-chaos",
                             plan.to_json()])
        finally:
            server.shutdown()
            server.server_close()
        assert code == 0
        with Catalog(catalog_path(root)) as catalog:
            assert JobQueue(catalog).outstanding("chaos-smoke") == 0
