"""Tests for the neural-network layers, attention encoder, and distributions."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients
from repro.nn import (
    MLP,
    Categorical,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ReLU,
    SelfAttentionEncoder,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.init import orthogonal, xavier_uniform


class TestLayers:
    def test_linear_shapes(self, rng):
        layer = Linear(5, 3, rng=rng)
        output = layer(Tensor(rng.standard_normal((7, 5))))
        assert output.shape == (7, 3)

    def test_linear_parameters(self, rng):
        layer = Linear(5, 3, rng=rng)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert layer.num_parameters() == 5 * 3 + 3

    def test_activations(self):
        x = Tensor([[-1.0, 2.0]])
        assert np.allclose(ReLU()(x).numpy(), [[0.0, 2.0]])
        assert np.allclose(Tanh()(x).numpy(), np.tanh([[-1.0, 2.0]]))
        assert np.allclose(Sigmoid()(Tensor([[0.0]])).numpy(), [[0.5]])

    def test_layernorm_normalizes(self, rng):
        layer = LayerNorm(8)
        output = layer(Tensor(rng.standard_normal((4, 8)) * 10.0 + 5.0)).numpy()
        assert np.allclose(output.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(output.std(axis=-1), 1.0, atol=1e-2)

    def test_embedding_lookup(self, rng):
        layer = Embedding(10, 4, rng=rng)
        output = layer(np.array([1, 3, 1]))
        assert output.shape == (3, 4)
        assert np.allclose(output.numpy()[0], output.numpy()[2])

    def test_sequential_chains(self, rng):
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        assert len(model) == 3
        assert model(Tensor(rng.standard_normal((5, 4)))).shape == (5, 2)

    def test_mlp_output_shape(self, rng):
        model = MLP(6, [16, 16], 3, rng=rng)
        assert model(Tensor(rng.standard_normal((2, 6)))).shape == (2, 3)

    def test_mlp_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP(4, [8], 2, activation="swish")

    def test_mlp_gradients_flow_to_all_parameters(self, rng):
        model = MLP(4, [8], 2, rng=rng)
        x = Tensor(rng.standard_normal((3, 4)))
        loss = (model(x) ** 2).sum()
        loss.backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_linear_gradient_matches_numerical(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = Tensor(rng.standard_normal((4, 3)))

        def loss():
            return (layer(x) ** 2).sum()

        assert check_gradients(loss, layer.parameters(), tolerance=1e-3)

    def test_layernorm_gradient_matches_numerical(self, rng):
        layer = LayerNorm(5)
        x = Tensor(rng.standard_normal((2, 5)), requires_grad=True)

        def loss():
            return (layer(x) ** 2).sum()

        assert check_gradients(loss, [x] + layer.parameters(), tolerance=1e-3)


class TestModule:
    def test_state_dict_roundtrip(self, rng):
        model = MLP(4, [8], 2, rng=rng)
        clone = MLP(4, [8], 2, rng=np.random.default_rng(999))
        clone.load_state_dict(model.state_dict())
        x = Tensor(rng.standard_normal((3, 4)))
        assert np.allclose(model(x).numpy(), clone(x).numpy())

    def test_load_state_dict_rejects_mismatch(self, rng):
        model = MLP(4, [8], 2, rng=rng)
        with pytest.raises(KeyError):
            model.load_state_dict({"bogus": np.zeros(3)})

    def test_train_eval_modes_propagate(self, rng):
        model = Sequential(Linear(2, 2, rng=rng), ReLU())
        model.eval()
        assert not model.training
        assert all(not layer.training for layer in model)
        model.train()
        assert model.training

    def test_zero_grad_clears_all(self, rng):
        model = MLP(3, [4], 2, rng=rng)
        (model(Tensor(rng.standard_normal((2, 3)))) ** 2).sum().backward()
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestInit:
    def test_orthogonal_columns(self, rng):
        weight = orthogonal((8, 4), rng=rng)
        gram = weight.T @ weight
        assert np.allclose(gram, np.eye(4), atol=1e-8)

    def test_orthogonal_gain(self, rng):
        weight = orthogonal((4, 4), gain=2.0, rng=rng)
        assert np.allclose(weight @ weight.T, 4.0 * np.eye(4), atol=1e-8)

    def test_xavier_bounds(self, rng):
        weight = xavier_uniform((10, 20), rng=rng)
        limit = np.sqrt(6.0 / 30.0)
        assert np.all(np.abs(weight) <= limit + 1e-12)


class TestAttention:
    def test_output_shape(self, rng):
        encoder = SelfAttentionEncoder(input_dim=7, model_dim=16, rng=rng)
        output = encoder(Tensor(rng.standard_normal((3, 5, 7))))
        assert output.shape == (3, 16)

    def test_rejects_non_sequence_input(self, rng):
        encoder = SelfAttentionEncoder(input_dim=7, model_dim=16, rng=rng)
        with pytest.raises(ValueError):
            encoder(Tensor(rng.standard_normal((3, 7))))

    def test_gradients_flow(self, rng):
        encoder = SelfAttentionEncoder(input_dim=4, model_dim=8, rng=rng)
        x = Tensor(rng.standard_normal((2, 3, 4)))
        (encoder(x) ** 2).sum().backward()
        assert all(p.grad is not None for p in encoder.parameters())


class TestCategorical:
    def test_sample_distribution_matches_probabilities(self, rng):
        logits = Tensor(np.log(np.array([[0.7, 0.2, 0.1]])))
        distribution = Categorical(logits)
        samples = [int(distribution.sample(rng)[0]) for _ in range(3000)]
        frequency = np.bincount(samples, minlength=3) / len(samples)
        assert np.allclose(frequency, [0.7, 0.2, 0.1], atol=0.05)

    def test_mode(self):
        distribution = Categorical(Tensor(np.array([[0.0, 5.0, 1.0], [9.0, 0.0, 0.0]])))
        assert np.array_equal(distribution.mode(), [1, 0])

    def test_log_prob(self):
        distribution = Categorical(Tensor(np.log(np.array([[0.25, 0.75]]))))
        assert np.allclose(distribution.log_prob(np.array([1])).numpy(), np.log(0.75))

    def test_entropy_bounds(self, rng):
        logits = Tensor(rng.standard_normal((6, 5)))
        entropy = Categorical(logits).entropy().numpy()
        assert np.all(entropy >= 0.0)
        assert np.all(entropy <= np.log(5.0) + 1e-9)

    def test_probs_sum_to_one(self, rng):
        distribution = Categorical(Tensor(rng.standard_normal((4, 9))))
        assert np.allclose(distribution.probs.sum(axis=-1), 1.0)
