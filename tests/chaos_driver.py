"""A tiny configurable experiment driver for the fault-tolerance tests.

Implements the :mod:`repro.runs.spec` cell protocol with behavior chosen per
cell through ``params["mode"]``:

``ok``
    Return the row immediately (deterministic in ``seed``).
``fail``
    Raise ``RuntimeError`` — unless the ``CHAOS_HEAL`` environment variable
    is set, which "fixes" the cell so a resume can re-attempt it.
``flaky``
    Fail the first ``params["fails"]`` calls (counted in a file inside the
    cell directory, so the count survives retries and resumes), succeed after.
``sleep``
    Sleep ``params["seconds"]`` before returning (for watchdog tests).
``sleep_once``
    Sleep only on the first call (counted in a file inside the cell
    directory), return immediately afterwards — for kill-and-reclaim tests
    where the second worker must finish the cell fast.
``interrupt``
    Raise ``KeyboardInterrupt`` — control flow must propagate, never be
    recorded as an ordinary cell failure.
"""

from __future__ import annotations

import os
import time


def run_cell(params, scale, seed=0, ctx=None):
    mode = params.get("mode", "ok")
    if mode == "fail" and not os.environ.get("CHAOS_HEAL"):
        raise RuntimeError(f"chaos: cell {params['name']} told to fail")
    if mode == "flaky":
        counter = ctx.cell_dir / "chaos-attempts.txt"
        calls = int(counter.read_text()) if counter.exists() else 0
        counter.write_text(str(calls + 1))
        if calls < int(params.get("fails", 1)):
            raise RuntimeError(f"chaos: flaky call {calls + 1} of cell {params['name']}")
    if mode == "sleep":
        time.sleep(float(params.get("seconds", 5.0)))
    if mode == "sleep_once":
        counter = ctx.cell_dir / "chaos-sleeps.txt"
        calls = int(counter.read_text()) if counter.exists() else 0
        counter.write_text(str(calls + 1))
        if calls == 0:
            time.sleep(float(params.get("seconds", 30.0)))
    if mode == "interrupt":
        raise KeyboardInterrupt
    return {"name": params["name"], "value": seed + int(params.get("offset", 0))}


def format_results(rows):
    return "\n".join(f"{row['name']}={row['value']}" for row in rows)
