"""Tests for functional ops (softmax family) and the optimizers."""

import numpy as np
import pytest

from repro.autodiff import Adam, SGD, Tensor, check_gradients, functional as F


class TestFunctional:
    def test_softmax_sums_to_one(self, rng):
        logits = Tensor(rng.standard_normal((5, 7)))
        probabilities = F.softmax(logits).numpy()
        assert np.allclose(probabilities.sum(axis=-1), 1.0)
        assert np.all(probabilities >= 0.0)

    def test_softmax_is_shift_invariant(self, rng):
        logits = rng.standard_normal((3, 4))
        a = F.softmax(Tensor(logits)).numpy()
        b = F.softmax(Tensor(logits + 100.0)).numpy()
        assert np.allclose(a, b)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        logits = Tensor(rng.standard_normal((4, 6)))
        assert np.allclose(F.log_softmax(logits).numpy(),
                           np.log(F.softmax(logits).numpy()))

    def test_gather_log_prob(self):
        log_probs = Tensor(np.log(np.array([[0.2, 0.8], [0.5, 0.5]])))
        picked = F.gather_log_prob(log_probs, np.array([1, 0]))
        assert np.allclose(picked.numpy(), np.log([0.8, 0.5]))

    def test_categorical_entropy_uniform_is_log_n(self):
        logits = Tensor(np.zeros((2, 8)))
        assert np.allclose(F.categorical_entropy(logits).numpy(), np.log(8.0))

    def test_categorical_entropy_peaked_is_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0, 0.0]]))
        assert F.categorical_entropy(logits).numpy()[0] < 1e-3

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        assert F.cross_entropy(logits, np.array([0, 1])).item() < 1e-3

    def test_mse_loss(self):
        prediction = Tensor([1.0, 2.0, 3.0])
        assert np.isclose(F.mse_loss(prediction, np.array([1.0, 2.0, 5.0])).item(), 4.0 / 3.0)

    def test_huber_loss_small_errors_quadratic(self):
        prediction = Tensor([0.5])
        assert np.isclose(F.huber_loss(prediction, np.array([0.0])).item(), 0.125)

    def test_huber_loss_large_errors_linear(self):
        prediction = Tensor([10.0])
        assert np.isclose(F.huber_loss(prediction, np.array([0.0])).item(), 9.5)

    def test_softmax_gradient_matches_numerical(self, rng):
        logits = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        targets = np.array([0, 2, 1])

        def loss():
            return F.cross_entropy(logits, targets)

        assert check_gradients(loss, [logits])

    def test_entropy_gradient_matches_numerical(self, rng):
        logits = Tensor(rng.standard_normal((2, 5)), requires_grad=True)

        def loss():
            return F.categorical_entropy(logits).sum()

        assert check_gradients(loss, [logits], tolerance=1e-3)


class TestOptimizers:
    def _quadratic(self, parameter: Tensor) -> Tensor:
        target = Tensor(np.array([3.0, -2.0, 0.5]))
        diff = parameter - target
        return (diff * diff).sum()

    def test_sgd_converges_on_quadratic(self):
        parameter = Tensor(np.zeros(3), requires_grad=True)
        optimizer = SGD([parameter], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            self._quadratic(parameter).backward()
            optimizer.step()
        assert np.allclose(parameter.numpy(), [3.0, -2.0, 0.5], atol=1e-3)

    def test_sgd_with_momentum_converges(self):
        parameter = Tensor(np.zeros(3), requires_grad=True)
        optimizer = SGD([parameter], lr=0.05, momentum=0.9)
        for _ in range(200):
            optimizer.zero_grad()
            self._quadratic(parameter).backward()
            optimizer.step()
        assert np.allclose(parameter.numpy(), [3.0, -2.0, 0.5], atol=1e-2)

    def test_adam_converges_on_quadratic(self):
        parameter = Tensor(np.zeros(3), requires_grad=True)
        optimizer = Adam([parameter], lr=0.1)
        for _ in range(400):
            optimizer.zero_grad()
            self._quadratic(parameter).backward()
            optimizer.step()
        assert np.allclose(parameter.numpy(), [3.0, -2.0, 0.5], atol=1e-2)

    def test_weight_decay_shrinks_parameters(self):
        parameter = Tensor(np.array([10.0]), requires_grad=True)
        optimizer = SGD([parameter], lr=0.1, weight_decay=1.0)
        for _ in range(50):
            optimizer.zero_grad()
            # Zero loss gradient: only weight decay acts.
            (parameter * 0.0).sum().backward()
            optimizer.step()
        assert abs(parameter.item()) < 10.0

    def test_clip_grad_norm(self):
        parameter = Tensor(np.zeros(4), requires_grad=True)
        optimizer = SGD([parameter], lr=0.1)
        (parameter * 100.0).sum().backward()
        norm_before = float(np.linalg.norm(parameter.grad))
        reported = optimizer.clip_grad_norm(1.0)
        assert np.isclose(reported, norm_before)
        assert np.isclose(float(np.linalg.norm(parameter.grad)), 1.0)

    def test_optimizer_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_step_skips_parameters_without_grad(self):
        parameter = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = Adam([parameter], lr=0.1)
        optimizer.step()
        assert np.allclose(parameter.numpy(), [1.0])


class TestFusedKernels:
    """The fused single-node kernels agree with the composed primitive chains."""

    def test_composed_ops_context_toggles_flag(self):
        assert F.FUSED
        with F.composed_ops():
            assert not F.FUSED
        assert F.FUSED

    def test_log_softmax_forward_matches_composed(self):
        logits = np.random.default_rng(0).standard_normal((6, 5)) * 4
        fused = F.log_softmax(Tensor(logits)).numpy()
        with F.composed_ops():
            composed = F.log_softmax(Tensor(logits)).numpy()
        assert np.array_equal(fused, composed)

    def test_entropy_gradcheck(self):
        logits = Tensor(np.random.default_rng(1).standard_normal((4, 5)),
                        requires_grad=True)
        assert check_gradients(
            lambda: F.categorical_entropy(logits).mean(), [logits])

    def test_log_softmax_gradcheck_via_cross_entropy(self):
        logits = Tensor(np.random.default_rng(2).standard_normal((5, 4)),
                        requires_grad=True)
        targets = np.array([0, 3, 1, 2, 2])
        assert check_gradients(lambda: F.cross_entropy(logits, targets), [logits])

    def test_fused_linear_gradcheck(self):
        rng = np.random.default_rng(3)
        weight = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        bias = Tensor(rng.standard_normal(3), requires_grad=True)
        inputs = Tensor(rng.standard_normal((5, 4)), requires_grad=True)
        assert check_gradients(
            lambda: (F.linear(inputs, weight, bias) ** 2).sum(),
            [inputs, weight, bias])
