"""Tests for the analysis utilities and the simulated-hardware substitutes."""

import dataclasses

import numpy as np
import pytest

from repro.analysis import (
    brute_force_steps_estimate,
    bit_rate,
    classify_labels,
    classify_sequence,
    event_train_autocorrelogram,
    guess_accuracy,
    hamming_distance,
    prime_probe_search_space,
)
from repro.analysis.search_space import rl_vs_brute_force
from repro.attacks.sequences import AttackCategory, AttackSequence
from repro.cache.config import CacheConfig
from repro.env.config import EnvConfig
from repro.env.hardware_env import BlackboxHardwareEnv
from repro.hardware import (
    BlackboxCache,
    BlackboxCacheBackend,
    CacheQueryInterface,
    CovertChannelTimingModel,
    TimingParameters,
    get_machine,
    list_machines,
)
from repro.hardware.machines import TABLE3_MACHINES, TABLE10_MACHINES


class TestClassifier:
    def _config(self, **kwargs):
        defaults = dict(cache=CacheConfig.direct_mapped(4), attacker_addr_s=4,
                        attacker_addr_e=7, victim_addr_s=0, victim_addr_e=3,
                        victim_no_access_enable=False, warmup_accesses=0)
        defaults.update(kwargs)
        return EnvConfig(**defaults)

    def test_prime_probe_classified(self):
        # Table IV config 1 example sequence: 7 -> 4 -> 5 -> v -> 7 -> 5 -> 4 -> g
        config = self._config()
        category = classify_labels(["7", "4", "5", "v", "7", "5", "4", "g0"], config)
        assert category is AttackCategory.PRIME_PROBE

    def test_flush_reload_classified(self):
        # Table IV config 3 example: f0 -> f3 -> f2 -> v -> 2 -> 3 -> 0 -> g
        config = self._config(attacker_addr_s=0, attacker_addr_e=3, flush_enable=True)
        category = classify_labels(["f0", "f3", "f2", "v", "2", "3", "0", "g1"], config)
        assert category is AttackCategory.FLUSH_RELOAD

    def test_evict_reload_classified(self):
        # Table IV config 4 example: 6 -> 5 -> 7 -> v -> 7 -> 6 -> 1 -> g
        config = self._config(attacker_addr_s=0, attacker_addr_e=7,
                              cache=CacheConfig.direct_mapped(4))
        category = classify_labels(["6", "5", "7", "4", "v", "7", "6", "1", "g0"], config)
        assert category in (AttackCategory.EVICT_RELOAD, AttackCategory.PRIME_PROBE)

    def test_lru_state_classified(self):
        # Table V LRU example: 3 -> 1 -> 4 -> 2 -> v -> 0 -> g on a 4-way set
        config = self._config(cache=CacheConfig.fully_associative(4), attacker_addr_s=0,
                              attacker_addr_e=4, victim_addr_s=0, victim_addr_e=0,
                              victim_no_access_enable=True)
        category = classify_labels(["3", "1", "4", "2", "v", "0", "g0"], config)
        assert category in (AttackCategory.LRU_STATE, AttackCategory.EVICT_RELOAD)

    def test_sequence_without_trigger_unknown(self):
        config = self._config()
        assert classify_labels(["4", "5", "g0"], config) is AttackCategory.UNKNOWN

    def test_short_reload_without_eviction_is_lru_state(self):
        config = self._config(cache=CacheConfig.fully_associative(4), attacker_addr_s=0,
                              attacker_addr_e=5, victim_addr_s=0, victim_addr_e=0,
                              victim_no_access_enable=True)
        # Only two distinct accesses before the trigger cannot fill a 4-way set.
        category = classify_labels(["1", "2", "v", "0", "g0"], config)
        assert category is AttackCategory.LRU_STATE

    def test_classify_sequence_object(self):
        config = self._config()
        sequence = AttackSequence.from_labels(["4", "5", "6", "7", "v", "4", "5", "6", "7", "g0"])
        assert classify_sequence(sequence, config) is AttackCategory.PRIME_PROBE


class TestMetricsAndSearchSpace:
    def test_hamming_distance(self):
        assert hamming_distance([1, 0, 1], [1, 1, 1]) == 1
        with pytest.raises(ValueError):
            hamming_distance([1], [1, 0])

    def test_bit_rate_and_accuracy(self):
        assert bit_rate(16, 160) == 0.1
        assert guess_accuracy(3, 4) == 0.75
        assert guess_accuracy(0, 0) == 0.0
        with pytest.raises(ValueError):
            bit_rate(1, 0)
        with pytest.raises(ValueError):
            guess_accuracy(5, 4)

    def test_search_space_matches_paper_for_eight_ways(self):
        # The paper quotes M ~ 2.05e7 sequences and ~369 million steps for N=8.
        assert prime_probe_search_space(8) == pytest.approx(2.05e7, rel=0.05)
        assert brute_force_steps_estimate(8) == pytest.approx(3.69e8, rel=0.05)

    def test_search_space_grows_exponentially(self):
        values = [prime_probe_search_space(n) for n in (2, 4, 8, 12)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_rl_vs_brute_force_summary(self):
        summary = rl_vs_brute_force(8, rl_steps=1e6)
        assert summary["speedup"] > 100.0

    def test_invalid_ways_rejected(self):
        with pytest.raises(ValueError):
            prime_probe_search_space(0)

    def test_event_train_autocorrelogram_summary(self):
        summary = event_train_autocorrelogram([1, 0] * 20, max_lag=10)
        assert summary["length"] == 40
        assert summary["max_beyond_lag_zero"] > 0.75
        assert len(summary["autocorrelogram"]) == 11


class TestMachines:
    def test_registry_contains_paper_machines(self):
        keys = list_machines()
        assert "Core i7-6700:L1" in keys
        assert "Xeon W-1350P:L1D" in keys
        assert len(TABLE3_MACHINES) == 7
        assert len(TABLE10_MACHINES) == 4

    def test_get_machine(self):
        spec = get_machine("Core i7-6700:L1")
        assert spec.num_ways == 8
        assert spec.policy_is_documented
        nod = get_machine("Core i7-6700:L2")
        assert not nod.policy_is_documented

    def test_unknown_machine_rejected(self):
        with pytest.raises(KeyError):
            get_machine("Pentium II:L1")


class TestBlackbox:
    def test_timed_access_reflects_cache_state(self):
        spec = get_machine("Core i7-6700:L2")
        noiseless = dataclasses.replace(spec, noise_probability=0.0)
        blackbox = BlackboxCache(noiseless, rng=np.random.default_rng(0))
        hit, latency = blackbox.timed_access(0)
        assert hit is False
        hit, latency_hit = blackbox.timed_access(0)
        assert hit is True
        assert latency_hit < latency

    def test_noise_flips_some_observations(self):
        spec = get_machine("Core i7-6700:L2")
        noisy = dataclasses.replace(spec, noise_probability=0.5)
        blackbox = BlackboxCache(noisy, rng=np.random.default_rng(0))
        blackbox.timed_access(0)
        observations = [blackbox.timed_access(0)[0] for _ in range(100)]
        assert any(not hit for hit in observations)

    def test_backend_interface(self):
        backend = BlackboxCacheBackend(get_machine("Core i7-6700:L2"),
                                       rng=np.random.default_rng(0))
        hit, latency = backend.access(0, "attacker")
        assert isinstance(hit, bool) and latency >= 1
        backend.flush(0, "attacker")  # unsupported: silently ignored
        backend.reset()
        assert backend.blackbox.true_contents() == []


class TestCacheQuery:
    def test_batch_masks_victim_latency(self):
        interface = CacheQueryInterface(get_machine("Core i7-6700:L2"),
                                        rng=np.random.default_rng(0))
        result = interface.run_batch([("attacker", 1), ("victim", 0), ("attacker", 1)])
        assert result.hits[1] is None
        assert result.latencies[1] is None
        assert result.hits[2] is not None
        assert len(result.hit_pattern()) == 3
        assert result.hit_pattern()[1] == "-"

    def test_measure_eviction_detects_victim_activity(self):
        spec = get_machine("Core i7-6700:L2")
        quiet = dataclasses.replace(spec, noise_probability=0.0)
        interface = CacheQueryInterface(quiet, rng=np.random.default_rng(0))
        prime = list(range(1, spec.num_ways + 1))
        with_victim = interface.measure_eviction(prime, prime[0], victim_address=0, repeats=5)
        without_victim = interface.measure_eviction(prime, prime[0], victim_address=None, repeats=5)
        assert with_victim >= without_victim


class TestTimingModel:
    def test_stealthy_streamline_faster_on_every_machine(self):
        for machine in TABLE10_MACHINES:
            model = CovertChannelTimingModel(machine, seed=0)
            lru = model.bit_rate_mbps(TimingParameters.lru_address_based(machine.num_ways))
            stealthy = model.bit_rate_mbps(TimingParameters.stealthy_streamline(machine.num_ways))
            assert stealthy > lru

    def test_improvement_larger_for_higher_associativity(self):
        eight_way = get_machine("Xeon E5-2687W v2:L1D")
        twelve_way = get_machine("Xeon W-1350P:L1D")
        improvements = []
        for machine in (eight_way, twelve_way):
            model = CovertChannelTimingModel(machine, seed=0)
            lru = model.bit_rate_mbps(TimingParameters.lru_address_based(machine.num_ways))
            stealthy = model.bit_rate_mbps(TimingParameters.stealthy_streamline(machine.num_ways))
            improvements.append(stealthy / lru - 1.0)
        assert improvements[1] > improvements[0]
        assert improvements[0] > 0.1

    def test_repetitions_reduce_rate_and_error(self):
        machine = get_machine("Core i7-6700:L1D")
        model = CovertChannelTimingModel(machine, seed=0)
        parameters = TimingParameters.stealthy_streamline(machine.num_ways)
        assert model.bit_rate_mbps(parameters, repetitions=3) < model.bit_rate_mbps(parameters)
        assert (model.symbol_error_probability(parameters, repetitions=3)
                < model.symbol_error_probability(parameters, repetitions=1))

    def test_simulated_transmission_fields(self):
        machine = get_machine("Core i5-11600K:L1D")
        model = CovertChannelTimingModel(machine, seed=0)
        run = model.simulate_transmission(TimingParameters.stealthy_streamline(12),
                                          message_bits=512)
        assert run["bits_sent"] == 512
        assert run["bit_rate_mbps"] > 0
        assert 0.0 <= run["error_rate"] <= 1.0

    def test_error_curve_monotone_in_noise(self):
        machine = get_machine("Xeon E5-2687W v2:L1D")
        model = CovertChannelTimingModel(machine, seed=0)
        curve = model.bit_rate_error_curve(TimingParameters.stealthy_streamline(8),
                                           message_bits=512, noise_scales=(0.5, 4.0), trials=3)
        assert curve[0]["error_rate_mean"] <= curve[1]["error_rate_mean"]

    def test_timing_parameters_validation(self):
        with pytest.raises(ValueError):
            TimingParameters(bits_per_symbol=2, total_accesses=4, measured_accesses=6)
        with pytest.raises(ValueError):
            TimingParameters(bits_per_symbol=0, total_accesses=4, measured_accesses=2)


class TestBlackboxHardwareEnv:
    def test_environment_constructs_and_steps(self):
        env = BlackboxHardwareEnv.from_machine_key("Core i7-6700:L2", seed=0)
        observation = env.reset()
        assert observation.shape == (env.observation_size,)
        rng = np.random.default_rng(0)
        for _ in range(5):
            result = env.step(int(rng.integers(env.action_space.n)))
            if result.done:
                env.reset()

    def test_flush_reload_is_not_available(self):
        env = BlackboxHardwareEnv.from_machine_key("Core i7-6700:L1", seed=0)
        assert not env.config.flush_enable

    def test_attacker_range_defaults_to_twice_the_ways(self):
        env = BlackboxHardwareEnv.from_machine_key("Core i7-9700:L2", seed=0)
        assert len(env.config.attacker_addresses) == 2 * 4
