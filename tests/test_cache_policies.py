"""Tests for the replacement policies."""

import numpy as np
import pytest

from repro.cache.policies import (
    LRUPolicy,
    MRUPolicy,
    PLRUPolicy,
    REPLACEMENT_POLICIES,
    RRIPPolicy,
    RandomPolicy,
    make_policy,
)


def _all_valid(n):
    return [True] * n


class TestLRU:
    def test_evicts_least_recently_used(self):
        policy = LRUPolicy(4)
        for way in range(4):
            policy.on_fill(way)
        assert policy.victim(_all_valid(4)) == 0

    def test_hit_promotes(self):
        policy = LRUPolicy(4)
        for way in range(4):
            policy.on_fill(way)
        policy.on_hit(0)
        assert policy.victim(_all_valid(4)) == 1

    def test_prefers_invalid_way(self):
        policy = LRUPolicy(4)
        for way in range(4):
            policy.on_fill(way)
        valid = [True, True, False, True]
        assert policy.victim(valid) == 2

    def test_respects_locked_ways(self):
        policy = LRUPolicy(4)
        for way in range(4):
            policy.on_fill(way)
        assert policy.victim(_all_valid(4), frozenset({0})) == 1

    def test_all_locked_raises(self):
        policy = LRUPolicy(2)
        policy.on_fill(0)
        policy.on_fill(1)
        with pytest.raises(RuntimeError):
            policy.victim(_all_valid(2), frozenset({0, 1}))

    def test_sequence_of_touches_orders_ages(self):
        policy = LRUPolicy(4)
        for way in (0, 1, 2, 3, 1, 0):
            policy.on_hit(way) if way in (1, 0) and policy.ages[way] != way else policy.on_fill(way)
        # After touching 1 then 0 last, ways 2 and 3 are the oldest.
        assert policy.victim(_all_valid(4)) in (2, 3)

    def test_state_snapshot(self):
        policy = LRUPolicy(4)
        assert len(policy.state_snapshot()) == 4

    def test_invalid_way_rejected(self):
        with pytest.raises(IndexError):
            LRUPolicy(4).on_hit(7)


class TestPLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            PLRUPolicy(6)

    def test_tree_plru_approximates_lru(self):
        # After touching 0, 1, 2 the root bit points at the left subtree, so
        # standard tree-PLRU victimizes way 0 — a known divergence from true
        # LRU (which would pick the untouched way 3).
        policy = PLRUPolicy(4)
        for way in (0, 1, 2):
            policy.on_fill(way)
        victim = policy.victim(_all_valid(4))
        assert victim == 0
        assert victim != 2  # the most recently touched way is never the victim

    def test_full_fill_then_touch_changes_victim(self):
        policy = PLRUPolicy(4)
        for way in range(4):
            policy.on_fill(way)
        victim_before = policy.victim(_all_valid(4))
        policy.on_hit(victim_before)
        assert policy.victim(_all_valid(4)) != victim_before

    def test_locked_victim_skipped(self):
        policy = PLRUPolicy(4)
        for way in range(4):
            policy.on_fill(way)
        victim = policy.victim(_all_valid(4))
        alternate = policy.victim(_all_valid(4), frozenset({victim}))
        assert alternate != victim

    def test_eight_way_tree(self):
        policy = PLRUPolicy(8)
        for way in range(8):
            policy.on_fill(way)
        assert 0 <= policy.victim(_all_valid(8)) < 8

    def test_state_snapshot_length(self):
        assert len(PLRUPolicy(8).state_snapshot()) == 7


class TestRRIP:
    def test_insert_not_immediately_promoted(self):
        policy = RRIPPolicy(4)
        policy.on_fill(0)
        assert policy.rrpv[0] == policy.insert_rrpv

    def test_hit_promotes_to_zero(self):
        policy = RRIPPolicy(4)
        policy.on_fill(0)
        policy.on_hit(0)
        assert policy.rrpv[0] == 0

    def test_victim_prefers_distant_rereference(self):
        policy = RRIPPolicy(4)
        for way in range(4):
            policy.on_fill(way)
        policy.on_hit(0)
        policy.on_hit(1)
        victim = policy.victim(_all_valid(4))
        assert victim in (2, 3)

    def test_aging_terminates(self):
        policy = RRIPPolicy(4)
        for way in range(4):
            policy.on_fill(way)
            policy.on_hit(way)
        assert 0 <= policy.victim(_all_valid(4)) < 4

    def test_locked_ways_skipped(self):
        policy = RRIPPolicy(2)
        policy.on_fill(0)
        policy.on_fill(1)
        assert policy.victim(_all_valid(2), frozenset({0})) == 1


class TestRandomAndMRU:
    def test_random_victim_in_range(self):
        policy = RandomPolicy(4, rng=np.random.default_rng(0))
        for way in range(4):
            policy.on_fill(way)
        for _ in range(20):
            assert 0 <= policy.victim(_all_valid(4)) < 4

    def test_random_victim_respects_locks(self):
        policy = RandomPolicy(4, rng=np.random.default_rng(0))
        for _ in range(20):
            assert policy.victim(_all_valid(4), frozenset({0, 1, 2})) == 3

    def test_random_covers_multiple_ways(self):
        policy = RandomPolicy(8, rng=np.random.default_rng(1))
        victims = {policy.victim(_all_valid(8)) for _ in range(100)}
        assert len(victims) > 3

    def test_mru_evicts_most_recent(self):
        policy = MRUPolicy(4)
        for way in range(4):
            policy.on_fill(way)
        assert policy.victim(_all_valid(4)) == 3


class TestFactory:
    def test_all_registered_policies_construct(self):
        for name in REPLACEMENT_POLICIES:
            ways = 4
            policy = make_policy(name, ways)
            assert policy.num_ways == ways

    def test_case_insensitive(self):
        assert isinstance(make_policy("LRU", 4), LRUPolicy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy("belady", 4)

    def test_invalid_way_count_rejected(self):
        with pytest.raises(ValueError):
            LRUPolicy(0)
