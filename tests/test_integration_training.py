"""Integration test: PPO discovers a working attack on a small configuration.

This is the end-to-end check of the reproduction's core claim at test scale:
on a 2-set direct-mapped cache with disjoint attacker/victim address ranges,
the PPO agent converges to a prime+probe-style attack with perfect guess
accuracy within a couple of minutes on one CPU.
"""

import pytest

from repro.analysis.classifier import classify_sequence
from repro.attacks.sequences import AttackCategory, AttackSequence
from repro.cache.config import CacheConfig
from repro.env.config import EnvConfig
from repro.env.guessing_game import CacheGuessingGameEnv
from repro.rl import PPOConfig, PPOTrainer


def _env_config(seed: int) -> EnvConfig:
    return EnvConfig(cache=CacheConfig.direct_mapped(2), attacker_addr_s=2, attacker_addr_e=3,
                     victim_addr_s=0, victim_addr_e=1, victim_no_access_enable=False,
                     window_size=8, max_steps=8, seed=seed)


def _factory(seed: int) -> CacheGuessingGameEnv:
    return CacheGuessingGameEnv(_env_config(seed))


@pytest.mark.slow
def test_ppo_discovers_prime_probe_attack():
    ppo = PPOConfig(horizon=256, num_envs=8, minibatch_size=256, update_epochs=4,
                    learning_rate=5e-4, entropy_coefficient=0.03)
    trainer = PPOTrainer(_factory, ppo, hidden_sizes=(64, 64), seed=1)
    result = trainer.train(max_updates=120, eval_every=10, eval_episodes=40,
                           target_accuracy=0.95)

    assert result.converged, "PPO failed to find an attack on the 2-set cache"
    assert result.final_accuracy >= 0.95
    assert result.extraction is not None

    # Every per-secret replay ends in a correct guess, and the sequence is a
    # recognizable attack (prime+probe or an LRU-state variant).
    assert all(result.extraction.correct.values())
    representative = result.extraction.representative
    category = classify_sequence(AttackSequence.from_labels(representative),
                                 _env_config(0))
    assert category in (AttackCategory.PRIME_PROBE, AttackCategory.LRU_STATE,
                        AttackCategory.EVICT_RELOAD)

    # The discovered attack must actually use the victim trigger and at least
    # one probe access, i.e. it is not a degenerate guess-only policy.
    assert "v" in representative
    assert any(label.isdigit() for label in representative)
